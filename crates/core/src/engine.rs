//! The discovery engine: the paper's three algorithms as one state
//! machine with algorithm-specific request scheduling.
//!
//! The engine is deliberately I/O-free: it consumes completions/timeouts
//! and emits [`OutRequest`]s. The [`crate::fm::FmAgent`] adapts it to the
//! fabric's agent interface; unit tests drive it directly.
//!
//! ## Scheduling differences (paper §3)
//!
//! | algorithm      | outstanding requests                                  |
//! |----------------|-------------------------------------------------------|
//! | Serial Packet  | exactly one, breadth-first over devices               |
//! | Serial Device  | one device at a time, but its port reads in parallel  |
//! | Parallel       | unbounded: inject as soon as a response enables it    |
//!
//! ## Exploration bookkeeping
//!
//! The FM starts from its host endpoint (a local configuration-space
//! access, no packets). Each *probe* — a general-information read of the
//! device at the far end of a known active port — either discovers a new
//! device (insert, then read its port blocks, then probe beyond its other
//! active ports if it is a switch) or hits a DSN already in the database
//! (record the alternate-path link and stop, the dedup step of Fig. 2).

use crate::db::{DeviceRoute, TopologyDb};
use crate::metrics::Algorithm;
use crate::retry::RetryPolicy;
use asi_proto::{
    config::{general_info_read, port_info_reads, CAP_OWNERSHIP},
    turn_for, turn_width, CapabilityAddr, DeviceInfo, DeviceType, Pi4Status, PortInfo, PortState,
    TurnPool,
};
use asi_sim::{SimDuration, SimTime, TraceEvent, TraceHandle};
use std::collections::VecDeque;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Which of the paper's algorithms to run.
    pub algorithm: Algorithm,
    /// Turn-pool capacity for computed routes.
    pub pool_capacity: u16,
    /// Distributed-discovery extension: claim each new device's ownership
    /// register and stop exploring past devices claimed by a rival FM.
    pub claim_partitioning: bool,
    /// When (and for how long) a timed-out request is re-issued before
    /// the engine gives up on its target (the default never retries —
    /// the paper's loss-free assumption).
    pub retry: RetryPolicy,
    /// Base per-request timeout the retry policy scales from; the FM
    /// copies its `request_timeout` here.
    pub base_timeout: SimDuration,
}

impl EngineConfig {
    /// Plain single-FM configuration.
    pub fn new(algorithm: Algorithm, pool_capacity: u16) -> EngineConfig {
        EngineConfig {
            algorithm,
            pool_capacity,
            claim_partitioning: false,
            retry: RetryPolicy::default(),
            base_timeout: SimDuration::from_ms(5),
        }
    }
}

/// A PI-4 request the engine wants injected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutRequest {
    /// Request id (echoed by the completion).
    pub req_id: u32,
    /// Egress port at the FM endpoint.
    pub egress: u8,
    /// Route to the target.
    pub pool: TurnPool,
    /// What to ask.
    pub op: OutOp,
    /// How long the issuer should wait for the completion before
    /// reporting a timeout (computed by the engine's [`RetryPolicy`]
    /// from the attempt number).
    pub timeout: SimDuration,
}

/// Request payload shapes the engine issues.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OutOp {
    /// `ReadRequest { addr, dwords }`.
    Read {
        /// Target region.
        addr: CapabilityAddr,
        /// Blocks to read.
        dwords: u8,
    },
    /// `WriteRequest { addr, data }` (ownership claims).
    Write {
        /// Target region.
        addr: CapabilityAddr,
        /// Blocks to write.
        data: Vec<u32>,
    },
}

/// A device awaiting its general-information probe.
#[derive(Clone, Debug)]
struct ProbeTarget {
    route: DeviceRoute,
    /// The known device/port this probe looks through.
    via: (u64, u8),
}

/// An issued request: what it was for, plus its retry budget used.
#[derive(Clone, Debug)]
struct InFlight {
    kind: Pending,
    retries: u32,
    /// Request id of the operation's *first* attempt; seeds the retry
    /// policy's deterministic jitter so all attempts of one operation
    /// share a jitter stream.
    salt: u32,
}

/// In-flight request table specialised for the engine's key pattern.
///
/// Request ids come from a monotonically increasing counter and most
/// requests complete close to FIFO order, so the live ids always span a
/// narrow window `[head, head + slots.len())`. A sliding window of
/// `Option` slots makes insert/lookup/remove plain index arithmetic —
/// no hashing, no probing — which matters because the parallel
/// algorithm touches this table on every completion and timeout.
#[derive(Debug, Default)]
struct PendingTable {
    /// Slot `i` holds the request with id `head + i`.
    slots: VecDeque<Option<InFlight>>,
    /// Request id of `slots[0]`.
    head: u32,
    live: usize,
}

impl PendingTable {
    fn new() -> Self {
        PendingTable::default()
    }

    /// Inserts under `req_id`. Ids must be inserted in increasing order
    /// (guaranteed by the engine's `next_req` counter, including for
    /// retries, which are re-issued under fresh ids).
    fn insert(&mut self, req_id: u32, inflight: InFlight) {
        if self.slots.is_empty() {
            self.head = req_id;
        }
        let idx = (req_id - self.head) as usize;
        debug_assert!(idx >= self.slots.len(), "request ids must be monotonic");
        self.slots.resize_with(idx, || None);
        self.slots.push_back(Some(inflight));
        self.live += 1;
    }

    fn remove(&mut self, req_id: u32) -> Option<InFlight> {
        let idx = usize::try_from(req_id.checked_sub(self.head)?).ok()?;
        let taken = self.slots.get_mut(idx)?.take()?;
        self.live -= 1;
        // Drop the drained prefix so the window tracks the live range.
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.head = self.head.wrapping_add(1);
        }
        Some(taken)
    }

    fn contains(&self, req_id: u32) -> bool {
        req_id
            .checked_sub(self.head)
            .and_then(|off| self.slots.get(off as usize))
            .is_some_and(|slot| slot.is_some())
    }

    fn len(&self) -> usize {
        self.live
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// What an in-flight request was for.
#[derive(Clone, Debug)]
enum Pending {
    General(ProbeTarget),
    Ports {
        dsn: u64,
        first_port: u16,
    },
    ClaimWrite {
        dsn: u64,
    },
    ClaimCheck {
        dsn: u64,
    },
    /// Warm start: a targeted general-information read that checks a
    /// snapshotted device is still there and unchanged.
    Verify {
        dsn: u64,
    },
}

/// Per-run counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests issued.
    pub requests: u64,
    /// Completions consumed (data or error).
    pub responses: u64,
    /// Requests abandoned by timeout.
    pub timeouts: u64,
    /// Largest number of simultaneously outstanding requests — 1 for the
    /// serial algorithms by construction.
    pub max_outstanding: usize,
    /// Requests re-issued after a timeout.
    pub retries: u64,
    /// Probes answered by an already-known DSN (alternate paths).
    pub duplicate_probes: u64,
    /// Devices whose exploration was ceded to a rival manager
    /// (claim partitioning only).
    pub ceded_devices: u64,
    /// Requests the retry policy gave up on (timed out with no budget
    /// left) — the engine's graceful-degradation signal.
    pub abandoned: u64,
}

/// The device currently being explored by a serial algorithm.
#[derive(Debug)]
struct Exploring {
    dsn: u64,
    reads: VecDeque<(CapabilityAddr, u8, u16)>,
    outstanding: usize,
}

/// The discovery state machine.
pub struct Engine {
    cfg: EngineConfig,
    /// The database under construction.
    pub db: TopologyDb,
    /// DSNs of rival managers observed in ownership registers while
    /// claim partitioning (input to the election decision).
    pub rivals: std::collections::BTreeSet<u64>,
    /// Boundary devices ceded to a rival, as `(device, owner)` pairs in
    /// cede order (claim partitioning only).
    pub ceded: Vec<(u64, u64)>,
    pending: PendingTable,
    next_req: u32,
    probe_queue: VecDeque<ProbeTarget>,
    current: Option<Exploring>,
    stats: EngineStats,
    done: bool,
    my_dsn: u64,
    /// Warm-start verification outcomes (empty outside verify runs).
    verified: Vec<u64>,
    mismatched: Vec<u64>,
    /// Observability sink (disabled by default; see [`Engine::set_trace`]).
    trace: TraceHandle,
    /// The engine is clockless: the caller stamps the current simulated
    /// time before delegating completions/timeouts so trace records carry
    /// real timestamps.
    trace_now: SimTime,
}

impl Engine {
    /// Starts a full discovery: reads the host endpoint locally, then
    /// probes every active host port. Returns the engine plus the first
    /// requests to inject.
    pub fn start(
        cfg: EngineConfig,
        host_info: DeviceInfo,
        host_ports: &[PortInfo],
    ) -> (Engine, Vec<OutRequest>) {
        let mut db = TopologyDb::new(host_info.dsn);
        db.insert_device(
            host_info,
            DeviceRoute {
                egress: 0,
                pool: TurnPool::with_capacity(cfg.pool_capacity),
                entry_port: 0,
                hops: 0,
            },
        );
        for (p, info) in host_ports.iter().enumerate() {
            db.set_port(host_info.dsn, p as u16, *info);
        }
        let mut engine = Engine {
            cfg,
            db,
            rivals: std::collections::BTreeSet::new(),
            ceded: Vec::new(),
            pending: PendingTable::new(),
            next_req: 1,
            probe_queue: VecDeque::new(),
            current: None,
            stats: EngineStats::default(),
            done: false,
            my_dsn: host_info.dsn,
            verified: Vec::new(),
            mismatched: Vec::new(),
            trace: TraceHandle::disabled(),
            trace_now: SimTime::ZERO,
        };
        for (p, info) in host_ports.iter().enumerate() {
            if info.state.is_active() {
                let pool = TurnPool::with_capacity(engine.cfg.pool_capacity);
                engine.probe_queue.push_back(ProbeTarget {
                    route: DeviceRoute {
                        egress: p as u8,
                        pool,
                        entry_port: info.peer_port,
                        hops: 0,
                    },
                    via: (host_info.dsn, p as u8),
                });
            }
        }
        let out = engine.advance();
        engine.update_done();
        (engine, out)
    }

    /// Starts a *partial* discovery (affected-region assimilation,
    /// extension): keeps `db`, re-reads the port blocks of
    /// `reread_ports` devices, and probes through `probe_via`
    /// `(known dsn, port)` pairs.
    pub fn seeded(
        cfg: EngineConfig,
        mut db: TopologyDb,
        reread_ports: &[u64],
        probe_via: &[(u64, u8)],
    ) -> (Engine, Vec<OutRequest>) {
        let my_dsn = db.host_dsn();
        // Stored routes may traverse the very device whose disappearance
        // triggered this run: recompute them over the updated link set
        // first (the paper's "obtain a new set of paths" step).
        db.refresh_routes(cfg.pool_capacity);
        let mut engine = Engine {
            cfg,
            db,
            rivals: std::collections::BTreeSet::new(),
            ceded: Vec::new(),
            pending: PendingTable::new(),
            next_req: 1,
            probe_queue: VecDeque::new(),
            current: None,
            stats: EngineStats::default(),
            done: false,
            my_dsn,
            verified: Vec::new(),
            mismatched: Vec::new(),
            trace: TraceHandle::disabled(),
            trace_now: SimTime::ZERO,
        };
        let mut out = Vec::new();
        for &dsn in reread_ports {
            if let Some(d) = engine.db.device(dsn) {
                if dsn == my_dsn {
                    continue; // host is read locally
                }
                let port_count = d.info.port_count;
                let reads: VecDeque<(CapabilityAddr, u8, u16)> = port_info_reads(port_count)
                    .into_iter()
                    .scan(0u16, |first, (addr, dwords)| {
                        let f = *first;
                        *first += u16::from(asi_proto::PORTS_PER_READ);
                        Some((addr, dwords, f))
                    })
                    .collect();
                // Port re-reads bypass the serial "current device" dance:
                // issue directly (they are refreshes, not exploration).
                for (addr, dwords, first_port) in reads {
                    let route = engine.db.device(dsn).expect("present").route.clone();
                    out.push(engine.issue(
                        route,
                        OutOp::Read { addr, dwords },
                        Pending::Ports { dsn, first_port },
                    ));
                }
            }
        }
        for &(dsn, port) in probe_via {
            if let Some(t) = engine.probe_through(dsn, port) {
                engine.probe_queue.push_back(t);
            }
        }
        out.extend(engine.advance());
        if engine.pending.is_empty() && engine.probe_queue.is_empty() && engine.current.is_none() {
            engine.done = true;
        }
        (engine, out)
    }

    /// Starts a warm-start *verification* pass: `db` is a snapshot-seeded
    /// database whose routes have already been refreshed; one targeted
    /// general-information read per non-host device is issued eagerly in
    /// propagation order (closest first, Parallel-style). Devices whose
    /// responses match the cached record land in [`Engine::verified`];
    /// devices that answer differently, answer with an error, or never
    /// answer land in [`Engine::mismatched`] — the engine does **not**
    /// forget them, the fabric manager decides how to re-discover.
    pub fn verify(cfg: EngineConfig, db: TopologyDb) -> (Engine, Vec<OutRequest>) {
        let my_dsn = db.host_dsn();
        let mut engine = Engine {
            cfg,
            db,
            rivals: std::collections::BTreeSet::new(),
            ceded: Vec::new(),
            pending: PendingTable::new(),
            next_req: 1,
            probe_queue: VecDeque::new(),
            current: None,
            stats: EngineStats::default(),
            done: false,
            my_dsn,
            verified: Vec::new(),
            mismatched: Vec::new(),
            trace: TraceHandle::disabled(),
            trace_now: SimTime::ZERO,
        };
        let mut targets: Vec<(u16, u64)> = engine
            .db
            .devices()
            .filter(|d| d.info.dsn != my_dsn)
            .map(|d| (d.route.hops, d.info.dsn))
            .collect();
        targets.sort_unstable();
        let mut out = Vec::new();
        for (_, dsn) in targets {
            let route = engine.db.device(dsn).expect("present").route.clone();
            let (addr, dwords) = general_info_read();
            out.push(engine.issue(route, OutOp::Read { addr, dwords }, Pending::Verify { dsn }));
        }
        engine.update_done();
        (engine, out)
    }

    /// DSNs confirmed unchanged by a verification pass, in completion
    /// order.
    pub fn verified(&self) -> &[u64] {
        &self.verified
    }

    /// DSNs a verification pass could not confirm (changed, erroring, or
    /// silent), in detection order.
    pub fn mismatched(&self) -> &[u64] {
        &self.mismatched
    }

    /// Installs a trace sink. Emits [`TraceEvent::DeviceDiscovered`] on
    /// every database insert, [`TraceEvent::RequestCompleted`] /
    /// [`TraceEvent::RequestTimedOut`] as completions and timeouts are
    /// consumed, and [`TraceEvent::PendingTableSize`] whenever the
    /// in-flight table changes size. Call [`Engine::set_trace_time`]
    /// before delegating events so records carry the right timestamp.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Stamps the simulated time used for subsequent trace records (the
    /// engine itself is clockless).
    pub fn set_trace_time(&mut self, now: SimTime) {
        self.trace_now = now;
    }

    /// Emits the current pending-table size.
    fn trace_pending(&self) {
        let size = self.pending.len() as u32;
        self.trace
            .emit(self.trace_now, || TraceEvent::PendingTableSize { size });
    }

    /// True once the exploration queue and pending table are empty.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Run counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Requests currently in flight.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// True if `req_id` is still awaiting a completion.
    pub fn is_pending(&self, req_id: u32) -> bool {
        self.pending.contains(req_id)
    }

    /// Consumes a PI-4 completion. `words` is the data of a successful
    /// read, `Err` carries a read/write error status. Write completions
    /// pass `Ok(&[])`.
    pub fn handle_completion(
        &mut self,
        req_id: u32,
        result: Result<&[u32], Pi4Status>,
    ) -> Vec<OutRequest> {
        let Some(inflight) = self.pending.remove(req_id) else {
            return Vec::new(); // stale (timed out earlier)
        };
        self.stats.responses += 1;
        let ok = result.is_ok();
        self.trace
            .emit(self.trace_now, || TraceEvent::RequestCompleted {
                req_id,
                ok,
            });
        self.trace_pending();
        let mut out = Vec::new();
        match (inflight.kind, result) {
            (Pending::General(target), Ok(words)) => {
                self.on_general(target, words, &mut out);
            }
            (Pending::General(_), Err(_)) => {
                // No usable device behind that port.
            }
            (Pending::Ports { dsn, first_port }, Ok(words)) => {
                self.on_ports(dsn, first_port, words, &mut out);
            }
            (Pending::Ports { dsn, .. }, Err(_)) => {
                // Device died mid-exploration: forget it.
                self.forget(dsn);
            }
            (Pending::ClaimWrite { dsn }, Ok(_)) => {
                // Confirm ownership with a read-back.
                if let Some(d) = self.db.device(dsn) {
                    let route = d.route.clone();
                    out.push(self.issue(
                        route,
                        OutOp::Read {
                            addr: CapabilityAddr {
                                capability: CAP_OWNERSHIP,
                                offset: 0,
                            },
                            dwords: 2,
                        },
                        Pending::ClaimCheck { dsn },
                    ));
                }
            }
            (Pending::ClaimWrite { dsn }, Err(_)) => {
                self.forget(dsn);
            }
            (Pending::ClaimCheck { dsn }, Ok(words)) => {
                let owner = if words.len() >= 2 {
                    (u64::from(words[0]) << 32) | u64::from(words[1])
                } else {
                    0
                };
                if owner == self.my_dsn {
                    self.begin_port_reads(dsn, &mut out);
                } else {
                    // A rival got there first: keep the device + link but
                    // leave its region to the rival.
                    if owner != 0 {
                        self.rivals.insert(owner);
                    }
                    self.ceded.push((dsn, owner));
                    self.stats.ceded_devices += 1;
                    let to = owner;
                    self.trace
                        .emit(self.trace_now, || TraceEvent::FmYield { dsn, to });
                    self.finish_current_if(dsn);
                }
            }
            (Pending::ClaimCheck { dsn }, Err(_)) => {
                self.forget(dsn);
            }
            (Pending::Verify { dsn }, result) => {
                let matches = matches!(
                    result.ok().and_then(DeviceInfo::from_words),
                    Some(info) if self.db.device(dsn).is_some_and(|d| d.info == info)
                );
                if matches {
                    self.verified.push(dsn);
                    self.trace
                        .emit(self.trace_now, || TraceEvent::WarmVerified { dsn });
                } else {
                    self.mismatched.push(dsn);
                    self.trace
                        .emit(self.trace_now, || TraceEvent::VerifyMismatch { dsn });
                }
            }
        }
        out.extend(self.advance());
        self.update_done();
        out
    }

    /// Handles a request that never completed: re-issue it while the
    /// retry budget lasts, otherwise give the target up (the paper's FM
    /// assumes a removed device).
    pub fn handle_timeout(&mut self, req_id: u32) -> Vec<OutRequest> {
        let Some(inflight) = self.pending.remove(req_id) else {
            return Vec::new();
        };
        self.stats.timeouts += 1;
        self.trace
            .emit(self.trace_now, || TraceEvent::RequestTimedOut { req_id });
        self.trace_pending();
        if self
            .cfg
            .retry
            .allows_retry(self.cfg.base_timeout, inflight.retries)
        {
            if let Some(req) =
                self.reissue(inflight.kind.clone(), inflight.retries + 1, inflight.salt)
            {
                self.stats.retries += 1;
                return vec![req];
            }
        }
        self.stats.abandoned += 1;
        self.trace
            .emit(self.trace_now, || TraceEvent::RequestAbandoned { req_id });
        match inflight.kind {
            Pending::General(_) => {}
            Pending::Ports { dsn, .. }
            | Pending::ClaimWrite { dsn }
            | Pending::ClaimCheck { dsn } => self.forget(dsn),
            Pending::Verify { dsn } => {
                // A silent device is a mismatch, not a removal: the FM
                // owns the decision to re-discover around it.
                self.mismatched.push(dsn);
                self.trace
                    .emit(self.trace_now, || TraceEvent::VerifyMismatch { dsn });
            }
        }
        let out = self.advance();
        self.update_done();
        out
    }

    /// Rebuilds the request for a timed-out operation.
    fn reissue(&mut self, kind: Pending, retries: u32, salt: u32) -> Option<OutRequest> {
        let (route, op) = match &kind {
            Pending::General(target) => {
                let (addr, dwords) = general_info_read();
                (target.route.clone(), OutOp::Read { addr, dwords })
            }
            Pending::Ports { dsn, first_port } => {
                let d = self.db.device(*dsn)?;
                let remaining = d
                    .info
                    .port_count
                    .checked_sub(*first_port)?
                    .min(u16::from(asi_proto::PORTS_PER_READ));
                if remaining == 0 {
                    return None;
                }
                (
                    d.route.clone(),
                    OutOp::Read {
                        addr: CapabilityAddr::baseline(asi_proto::config::port_block_offset(
                            *first_port,
                        )),
                        dwords: (remaining * asi_proto::PORT_BLOCK_WORDS) as u8,
                    },
                )
            }
            Pending::ClaimWrite { dsn } => {
                let d = self.db.device(*dsn)?;
                (
                    d.route.clone(),
                    OutOp::Write {
                        addr: CapabilityAddr {
                            capability: CAP_OWNERSHIP,
                            offset: 0,
                        },
                        data: vec![(self.my_dsn >> 32) as u32, self.my_dsn as u32],
                    },
                )
            }
            Pending::ClaimCheck { dsn } => {
                let d = self.db.device(*dsn)?;
                (
                    d.route.clone(),
                    OutOp::Read {
                        addr: CapabilityAddr {
                            capability: CAP_OWNERSHIP,
                            offset: 0,
                        },
                        dwords: 2,
                    },
                )
            }
            Pending::Verify { dsn } => {
                let d = self.db.device(*dsn)?;
                let (addr, dwords) = general_info_read();
                (d.route.clone(), OutOp::Read { addr, dwords })
            }
        };
        Some(self.issue_attempt(route, op, kind, retries, Some(salt)))
    }

    // ------------------------------------------------------------------

    fn update_done(&mut self) {
        if self.pending.is_empty() && self.probe_queue.is_empty() && self.current.is_none() {
            self.done = true;
        }
    }

    fn on_general(&mut self, target: ProbeTarget, words: &[u32], out: &mut Vec<OutRequest>) {
        let Some(info) = DeviceInfo::from_words(words) else {
            return; // garbled response: treat like an error completion
        };
        // Record the link that this probe traversed.
        self.db
            .add_link(target.via, (info.dsn, target.route.entry_port));
        if self.db.contains(info.dsn) {
            // Alternate path to a known device (Fig. 2: "already
            // discovered — update connectivity and stop").
            self.stats.duplicate_probes += 1;
            return;
        }
        self.db.insert_device(info, target.route.clone());
        self.trace
            .emit(self.trace_now, || TraceEvent::DeviceDiscovered {
                dsn: info.dsn,
                switch: info.device_type == DeviceType::Switch,
                ports: info.port_count,
            });
        if self.cfg.claim_partitioning {
            let dsn = info.dsn;
            let claim = vec![(self.my_dsn >> 32) as u32, self.my_dsn as u32];
            // Serial algorithms treat the claim exchange as part of the
            // device's exploration: mark it current with no reads yet.
            if self.cfg.algorithm != Algorithm::Parallel {
                self.current = Some(Exploring {
                    dsn,
                    reads: VecDeque::new(),
                    outstanding: 0,
                });
            }
            out.push(self.issue(
                target.route,
                OutOp::Write {
                    addr: CapabilityAddr {
                        capability: CAP_OWNERSHIP,
                        offset: 0,
                    },
                    data: claim,
                },
                Pending::ClaimWrite { dsn },
            ));
        } else {
            self.begin_port_reads(info.dsn, out);
        }
    }

    /// Queues/issues the port-block reads of a freshly discovered device.
    fn begin_port_reads(&mut self, dsn: u64, out: &mut Vec<OutRequest>) {
        let Some(d) = self.db.device(dsn) else { return };
        let port_count = d.info.port_count;
        let route = d.route.clone();
        let reads: VecDeque<(CapabilityAddr, u8, u16)> = port_info_reads(port_count)
            .into_iter()
            .scan(0u16, |first, (addr, dwords)| {
                let f = *first;
                *first += u16::from(asi_proto::PORTS_PER_READ);
                Some((addr, dwords, f))
            })
            .collect();
        match self.cfg.algorithm {
            Algorithm::SerialPacket => {
                self.current = Some(Exploring {
                    dsn,
                    reads,
                    outstanding: 0,
                });
                // advance() issues them one by one.
            }
            Algorithm::SerialDevice => {
                // All port reads of the current device at once.
                let n = reads.len();
                for (addr, dwords, first_port) in reads {
                    out.push(self.issue(
                        route.clone(),
                        OutOp::Read { addr, dwords },
                        Pending::Ports { dsn, first_port },
                    ));
                }
                self.current = Some(Exploring {
                    dsn,
                    reads: VecDeque::new(),
                    outstanding: n,
                });
            }
            Algorithm::Parallel => {
                for (addr, dwords, first_port) in reads {
                    out.push(self.issue(
                        route.clone(),
                        OutOp::Read { addr, dwords },
                        Pending::Ports { dsn, first_port },
                    ));
                }
            }
        }
    }

    fn on_ports(&mut self, dsn: u64, first_port: u16, words: &[u32], out: &mut Vec<OutRequest>) {
        if !self.db.contains(dsn) {
            // The device was forgotten after an earlier error/timeout;
            // this late completion is moot.
            self.finish_current_if(dsn);
            return;
        }
        let block = usize::from(asi_proto::PORT_BLOCK_WORDS);
        let nports = words.len() / block;
        let mut new_targets = Vec::new();
        for i in 0..nports {
            let port = first_port + i as u16;
            let Some(info) = PortInfo::from_words(&words[i * block..(i + 1) * block]) else {
                continue;
            };
            self.db.set_port(dsn, port, info);
            let device = self.db.device(dsn).expect("device present");
            let is_switch = device.info.device_type == DeviceType::Switch;
            let back_edge = port == u16::from(device.route.entry_port);
            if info.state == PortState::Active && is_switch && !back_edge {
                if let Some(t) = self.probe_through(dsn, port as u8) {
                    new_targets.push(t);
                }
            }
        }
        match self.cfg.algorithm {
            Algorithm::Parallel => {
                for t in new_targets {
                    let pending = Pending::General(t.clone());
                    let (addr, dwords) = general_info_read();
                    out.push(self.issue(t.route, OutOp::Read { addr, dwords }, pending));
                }
            }
            _ => {
                self.probe_queue.extend(new_targets);
                if let Some(cur) = self.current.as_mut() {
                    if cur.dsn == dsn && cur.outstanding > 0 {
                        cur.outstanding -= 1;
                    }
                }
                self.finish_current_if(dsn);
            }
        }
    }

    /// Builds a probe target looking through `(dsn, port)` of a known
    /// switch (or the host endpoint).
    fn probe_through(&self, dsn: u64, port: u8) -> Option<ProbeTarget> {
        let device = self.db.device(dsn)?;
        let pinfo = (*device.ports.get(usize::from(port))?)?;
        if !pinfo.state.is_active() {
            return None;
        }
        let mut pool = device.route.pool.clone();
        if device.info.device_type == DeviceType::Switch {
            let ports = device.info.port_count as u8;
            let turn = turn_for(device.route.entry_port, port, ports);
            pool.push_turn(turn, turn_width(ports)).ok()?;
        }
        Some(ProbeTarget {
            route: DeviceRoute {
                egress: device.route.egress,
                pool,
                entry_port: pinfo.peer_port,
                hops: device.route.hops + 1,
            },
            via: (dsn, port),
        })
    }

    /// Serial scheduling: with nothing outstanding, issue the next port
    /// read of the current device, or pop the next probe target.
    fn advance(&mut self) -> Vec<OutRequest> {
        let mut out = Vec::new();
        match self.cfg.algorithm {
            Algorithm::Parallel => {
                // Parallel never queues: everything was issued eagerly,
                // except the initial seeds.
                while let Some(t) = self.probe_queue.pop_front() {
                    let (addr, dwords) = general_info_read();
                    out.push(self.issue(
                        t.route.clone(),
                        OutOp::Read { addr, dwords },
                        Pending::General(t),
                    ));
                }
            }
            Algorithm::SerialPacket => {
                if self.pending.is_empty() {
                    if let Some(cur) = self.current.as_mut() {
                        if let Some((addr, dwords, first_port)) = cur.reads.pop_front() {
                            let dsn = cur.dsn;
                            cur.outstanding += 1;
                            let route = self.db.device(dsn).expect("present").route.clone();
                            out.push(self.issue(
                                route,
                                OutOp::Read { addr, dwords },
                                Pending::Ports { dsn, first_port },
                            ));
                            return out;
                        }
                        // No reads left and nothing outstanding: done with
                        // this device.
                        self.current = None;
                    }
                    if self.pending.is_empty() && self.current.is_none() {
                        if let Some(t) = self.probe_queue.pop_front() {
                            let (addr, dwords) = general_info_read();
                            out.push(self.issue(
                                t.route.clone(),
                                OutOp::Read { addr, dwords },
                                Pending::General(t),
                            ));
                        }
                    }
                }
            }
            Algorithm::SerialDevice => {
                if self.pending.is_empty() {
                    self.current = None;
                    if let Some(t) = self.probe_queue.pop_front() {
                        let (addr, dwords) = general_info_read();
                        out.push(self.issue(
                            t.route.clone(),
                            OutOp::Read { addr, dwords },
                            Pending::General(t),
                        ));
                    }
                }
            }
        }
        out
    }

    /// Serial algorithms: when the current device's port reads have all
    /// completed, clear it so `advance` moves on.
    fn finish_current_if(&mut self, dsn: u64) {
        if let Some(cur) = self.current.as_ref() {
            if cur.dsn == dsn && cur.outstanding == 0 && cur.reads.is_empty() {
                self.current = None;
            }
        }
    }

    /// Drops a half-explored device (it stopped answering).
    fn forget(&mut self, dsn: u64) {
        if dsn == self.my_dsn {
            return;
        }
        self.db.remove_device(dsn);
        self.db.prune_unreachable();
        if let Some(cur) = self.current.as_ref() {
            if cur.dsn == dsn {
                self.current = None;
            }
        }
        // Outstanding requests to the forgotten device will be answered or
        // time out; both paths tolerate the missing DSN.
    }

    fn issue(&mut self, route: DeviceRoute, op: OutOp, pending: Pending) -> OutRequest {
        self.issue_attempt(route, op, pending, 0, None)
    }

    /// Issues attempt `retries` of an operation; `salt` is the first
    /// attempt's request id (`None` for a fresh operation, whose own id
    /// becomes the salt).
    fn issue_attempt(
        &mut self,
        route: DeviceRoute,
        op: OutOp,
        pending: Pending,
        retries: u32,
        salt: Option<u32>,
    ) -> OutRequest {
        let req_id = self.next_req;
        self.next_req += 1;
        let salt = salt.unwrap_or(req_id);
        let timeout = self
            .cfg
            .retry
            .attempt_timeout(self.cfg.base_timeout, retries, salt);
        self.pending.insert(
            req_id,
            InFlight {
                kind: pending,
                retries,
                salt,
            },
        );
        self.stats.requests += 1;
        self.stats.max_outstanding = self.stats.max_outstanding.max(self.pending.len());
        self.trace_pending();
        OutRequest {
            req_id,
            egress: route.egress,
            pool: route.pool,
            op,
            timeout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asi_proto::PortState;

    fn endpoint_info(dsn: u64) -> DeviceInfo {
        DeviceInfo {
            device_type: DeviceType::Endpoint,
            dsn,
            port_count: 1,
            max_packet_size: 2048,
            fm_capable: true,
            fm_priority: 0,
        }
    }

    fn switch_words(dsn: u64) -> Vec<u32> {
        DeviceInfo {
            device_type: DeviceType::Switch,
            dsn,
            port_count: 4,
            max_packet_size: 2048,
            fm_capable: false,
            fm_priority: 0,
        }
        .to_words()
        .to_vec()
    }

    fn active_port(peer_port: u8) -> PortInfo {
        PortInfo {
            state: PortState::Active,
            link_width: 1,
            link_speed: 10,
            peer_port,
        }
    }

    fn cfg(algorithm: Algorithm) -> EngineConfig {
        EngineConfig::new(algorithm, asi_proto::MAX_POOL_BITS)
    }

    #[test]
    fn isolated_host_finishes_immediately() {
        for alg in Algorithm::all() {
            let (engine, out) = Engine::start(
                cfg(alg),
                endpoint_info(1),
                &[PortInfo::default()], // port down
            );
            assert!(out.is_empty(), "{alg}: no requests expected");
            assert!(engine.is_done(), "{alg}: must finish immediately");
            assert_eq!(engine.db.device_count(), 1);
        }
    }

    #[test]
    fn start_probes_each_active_host_port() {
        let mut two_port = endpoint_info(1);
        two_port.port_count = 2;
        let (engine, out) = Engine::start(
            cfg(Algorithm::Parallel),
            two_port,
            &[active_port(3), active_port(5)],
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].egress, 0);
        assert_eq!(out[1].egress, 1);
        assert!(!engine.is_done());
        assert_eq!(engine.outstanding(), 2);
        // Serial variants issue only the first probe.
        let (_, out) = Engine::start(
            cfg(Algorithm::SerialPacket),
            two_port,
            &[active_port(3), active_port(5)],
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn error_completion_on_probe_moves_on() {
        let (mut engine, out) = Engine::start(
            cfg(Algorithm::SerialPacket),
            endpoint_info(1),
            &[active_port(0)],
        );
        let req = out[0].req_id;
        let next = engine.handle_completion(req, Err(Pi4Status::ConfigurationRetry));
        assert!(next.is_empty());
        assert!(engine.is_done(), "failed probe must not wedge the engine");
        assert_eq!(engine.stats().responses, 1);
    }

    #[test]
    fn timeout_on_probe_moves_on() {
        let (mut engine, out) = Engine::start(
            cfg(Algorithm::Parallel),
            endpoint_info(1),
            &[active_port(0)],
        );
        let req = out[0].req_id;
        assert!(engine.is_pending(req));
        let next = engine.handle_timeout(req);
        assert!(next.is_empty());
        assert!(engine.is_done());
        assert_eq!(engine.stats().timeouts, 1);
        // A late completion for the timed-out request is ignored.
        let late = engine.handle_completion(req, Ok(&switch_words(9)));
        assert!(late.is_empty());
        assert!(!engine.db.contains(9), "stale completion must not insert");
    }

    #[test]
    fn garbled_general_info_is_tolerated() {
        let (mut engine, out) = Engine::start(
            cfg(Algorithm::SerialDevice),
            endpoint_info(1),
            &[active_port(0)],
        );
        // All-zero words do not decode to a DeviceInfo.
        let next = engine.handle_completion(out[0].req_id, Ok(&[0u32; 6]));
        assert!(next.is_empty());
        assert!(engine.is_done());
    }

    #[test]
    fn discovering_one_switch_reads_its_ports() {
        let (mut engine, out) = Engine::start(
            cfg(Algorithm::SerialDevice),
            endpoint_info(1),
            &[active_port(2)], // host's link enters switch port 2
        );
        // Serve the general probe with a 4-port switch.
        let reads = engine.handle_completion(out[0].req_id, Ok(&switch_words(7)));
        // 4 ports at 2 per read = 2 port reads, all at once (SerialDevice).
        assert_eq!(reads.len(), 2);
        assert!(engine.db.contains(7));
        assert_eq!(engine.db.link_count(), 1);
        assert_eq!(engine.db.neighbor(1, 0), Some((7, 2)));

        // Answer both port reads: only the entry port is active.
        let mut port_words = Vec::new();
        port_words.extend(PortInfo::default().to_words());
        port_words.extend(PortInfo::default().to_words());
        let mut first = port_words.clone();
        first[0..4].copy_from_slice(&PortInfo::default().to_words());
        first[4..8].copy_from_slice(
            &PortInfo {
                state: PortState::Down,
                ..PortInfo::default()
            }
            .to_words(),
        );
        // Ports 0..2 down:
        let r1 = engine.handle_completion(reads[0].req_id, Ok(&port_words));
        assert!(r1.is_empty());
        // Ports 2..4: port 2 is the back-edge (active), port 3 down.
        let mut words2 = Vec::new();
        words2.extend(active_port(0).to_words());
        words2.extend(PortInfo::default().to_words());
        let r2 = engine.handle_completion(reads[1].req_id, Ok(&words2));
        assert!(r2.is_empty(), "back-edge must not be re-probed");
        assert!(engine.is_done());
        assert!(engine.db.device(7).unwrap().ports_complete());
    }

    #[test]
    fn seeded_with_nothing_is_done() {
        let db = TopologyDb::new(1);
        let (engine, out) = Engine::seeded(cfg(Algorithm::Parallel), db, &[], &[]);
        assert!(out.is_empty());
        assert!(engine.is_done());
    }

    #[test]
    fn seeded_probe_via_explores_through_a_known_port() {
        // Database: host(1) -- sw(7, 4 ports); sw port 1 is active and
        // unexplored (a hot-added neighbour).
        let mut db = TopologyDb::new(1);
        db.insert_device(
            endpoint_info(1),
            crate::db::DeviceRoute {
                egress: 0,
                pool: TurnPool::with_capacity(64),
                entry_port: 0,
                hops: 0,
            },
        );
        db.insert_device(
            DeviceInfo {
                device_type: DeviceType::Switch,
                dsn: 7,
                port_count: 4,
                max_packet_size: 2048,
                fm_capable: false,
                fm_priority: 0,
            },
            crate::db::DeviceRoute {
                egress: 0,
                pool: TurnPool::with_capacity(64),
                entry_port: 2,
                hops: 1,
            },
        );
        db.add_link((1, 0), (7, 2));
        for p in 0..4 {
            db.set_port(
                7,
                p,
                if p == 2 || p == 1 {
                    // Both peers are endpoints, so the peer port is 0.
                    active_port(0)
                } else {
                    PortInfo::default()
                },
            );
        }
        let (mut engine, out) = Engine::seeded(cfg(Algorithm::Parallel), db, &[], &[(7, 1)]);
        assert_eq!(out.len(), 1, "one probe through (7, 1)");
        assert!(!engine.is_done());
        // The probe's pool carries the turn through switch 7 (entry 2 →
        // egress 1 on a 4-port switch).
        let mut expect = TurnPool::with_capacity(asi_proto::MAX_POOL_BITS);
        expect.push_turn(turn_for(2, 1, 4), turn_width(4)).unwrap();
        assert_eq!(out[0].pool, expect);
        // Answer with a fresh endpoint: discovery extends and completes.
        let mut ep9 = endpoint_info(9);
        ep9.fm_capable = false;
        let reads = engine.handle_completion(out[0].req_id, Ok(&ep9.to_words()));
        assert_eq!(reads.len(), 1, "one port-block read for the endpoint");
        let done = engine.handle_completion(reads[0].req_id, Ok(&active_port(1).to_words()));
        assert!(done.is_empty());
        assert!(engine.is_done());
        assert!(engine.db.contains(9));
        assert_eq!(engine.db.neighbor(7, 1), Some((9, 0)));
    }

    #[test]
    fn claim_flow_cedes_to_rival() {
        let mut c = cfg(Algorithm::Parallel);
        c.claim_partitioning = true;
        let (mut engine, out) = Engine::start(c, endpoint_info(1), &[active_port(2)]);
        // General info answered: engine must claim before reading ports.
        let claim = engine.handle_completion(out[0].req_id, Ok(&switch_words(7)));
        assert_eq!(claim.len(), 1);
        assert!(matches!(claim[0].op, OutOp::Write { .. }));
        // Write acked: read-back issued.
        let check = engine.handle_completion(claim[0].req_id, Ok(&[]));
        assert_eq!(check.len(), 1);
        assert!(matches!(check[0].op, OutOp::Read { .. }));
        // Read-back shows a rival owner: cede, no port reads, done.
        let rival = 0xBEEFu64;
        let out =
            engine.handle_completion(check[0].req_id, Ok(&[(rival >> 32) as u32, rival as u32]));
        assert!(out.is_empty());
        assert!(engine.is_done());
        assert_eq!(engine.stats().ceded_devices, 1);
        assert!(engine.rivals.contains(&rival));
        // The device and link stay in the database for the merge.
        assert!(engine.db.contains(7));
        assert_eq!(engine.db.link_count(), 1);
    }

    #[test]
    fn claim_flow_owns_and_explores() {
        let mut c = cfg(Algorithm::Parallel);
        c.claim_partitioning = true;
        let (mut engine, out) = Engine::start(c, endpoint_info(1), &[active_port(2)]);
        let claim = engine.handle_completion(out[0].req_id, Ok(&switch_words(7)));
        let check = engine.handle_completion(claim[0].req_id, Ok(&[]));
        // Read-back shows our own DSN (1): proceed with port reads.
        let reads = engine.handle_completion(check[0].req_id, Ok(&[0, 1]));
        assert_eq!(reads.len(), 2, "port reads follow a successful claim");
        assert!(engine.rivals.is_empty());
    }

    fn flight() -> InFlight {
        InFlight {
            kind: Pending::ClaimWrite { dsn: 0 },
            retries: 0,
            salt: 0,
        }
    }

    #[test]
    fn pending_table_fifo_and_out_of_order_removal() {
        let mut t = PendingTable::new();
        for id in 1..=5u32 {
            t.insert(id, flight());
        }
        assert_eq!(t.len(), 5);
        assert!(t.contains(3));
        assert!(!t.contains(0));
        assert!(!t.contains(6));
        // Out-of-order removal leaves a hole; the window only slides once
        // the head drains.
        assert!(t.remove(3).is_some());
        assert!(t.remove(3).is_none(), "double remove fails");
        assert!(!t.contains(3));
        assert_eq!(t.len(), 4);
        assert!(t.remove(1).is_some());
        assert!(t.remove(2).is_some());
        assert_eq!(t.len(), 2);
        assert!(t.contains(4) && t.contains(5));
        assert!(t.remove(5).is_some());
        assert!(t.remove(4).is_some());
        assert!(t.is_empty());
    }

    #[test]
    fn pending_table_window_stays_bounded_under_fifo_churn() {
        let mut t = PendingTable::new();
        let mut next = 1u32;
        for _ in 0..10_000 {
            t.insert(next, flight());
            next += 1;
            if t.len() > 8 {
                // remove the oldest live id
                let oldest = next - t.len() as u32;
                assert!(t.remove(oldest).is_some());
            }
            assert!(t.slots.len() <= 16, "window grew: {}", t.slots.len());
        }
    }

    #[test]
    fn pending_table_restart_after_drain() {
        let mut t = PendingTable::new();
        t.insert(1, flight());
        assert!(t.remove(1).is_some());
        assert!(t.is_empty());
        // A much later id after full drain must not materialise the gap.
        t.insert(1000, flight());
        assert_eq!(t.slots.len(), 1);
        assert!(t.contains(1000));
        assert!(!t.contains(1));
    }
}
