//! Engine state-machine tests against a *mock fabric*: a pure responder
//! that executes each [`OutRequest`]'s turn pool over a ground-truth
//! topology and services the read from the target's configuration space.
//! No discrete-event simulation — this isolates the discovery logic and
//! lets property tests drive it with adversarial completion orderings.

use asi_core::{Algorithm, Engine, EngineConfig, OutOp, OutRequest};
use asi_proto::{
    apply_backward, apply_forward, turn_width, ConfigSpace, DeviceInfo, DeviceType, Direction,
    PortInfo, PortState, TurnCursor,
};
use asi_sim::SimRng;
use asi_topo::{fat_tree, irregular, mesh, torus, IrregularSpec, NodeId, Topology};
use proptest::prelude::*;
use std::collections::{BTreeSet, VecDeque};

/// A zero-time fabric: executes routes and services PI-4 reads exactly
/// like the real simulator, but synchronously.
struct MockFabric {
    topo: Topology,
    configs: Vec<ConfigSpace>,
    host: NodeId,
}

impl MockFabric {
    fn new(topo: &Topology) -> MockFabric {
        let host = asi_topo::default_fm_endpoint(topo).expect("endpoint");
        let mut configs = Vec::new();
        for (id, node) in topo.nodes() {
            let info = DeviceInfo {
                device_type: node.device_type,
                dsn: dsn_of(id),
                port_count: u16::from(node.ports),
                max_packet_size: 2048,
                fm_capable: node.device_type == DeviceType::Endpoint,
                fm_priority: 0,
            };
            configs.push(ConfigSpace::new(info));
        }
        let mut fabric = MockFabric {
            topo: topo.clone(),
            configs,
            host,
        };
        fabric.train_all();
        fabric
    }

    fn train_all(&mut self) {
        for (id, node) in self.topo.nodes() {
            for p in 0..node.ports {
                if let Some(peer) = self.topo.peer(id, p) {
                    self.configs[id.idx()].set_port(
                        u16::from(p),
                        PortInfo {
                            state: PortState::Active,
                            link_width: 1,
                            link_speed: 10,
                            peer_port: peer.port,
                        },
                    );
                }
            }
        }
    }

    /// Walks a request's turn pool from the host and returns the target
    /// device, or `None` if the route falls off the fabric.
    fn route_target(&self, req: &OutRequest) -> Option<NodeId> {
        let mut at = self.topo.peer(self.host, req.egress)?;
        let mut cursor = TurnCursor::start(&req.pool, Direction::Forward);
        while !cursor.exhausted(&req.pool) {
            let node = self.topo.node(at.node)?;
            if node.device_type != DeviceType::Switch {
                return None;
            }
            let width = turn_width(node.ports);
            let (turn, next) = cursor.take_turn(&req.pool, width).ok()?;
            let egress = apply_forward(at.port, turn, node.ports);
            // Exercise reversibility while we are here.
            assert_eq!(apply_backward(egress, turn, node.ports), at.port);
            at = self.topo.peer(at.node, egress)?;
            cursor = next;
        }
        Some(at.node)
    }

    /// Services one request, returning `(req_id, read result)`.
    fn service(&mut self, req: &OutRequest) -> (u32, Result<Vec<u32>, asi_proto::Pi4Status>) {
        let Some(target) = self.route_target(req) else {
            panic!("engine emitted a request that routes off the fabric");
        };
        let result = match &req.op {
            OutOp::Read { addr, dwords } => self.configs[target.idx()].read(*addr, *dwords),
            OutOp::Write { addr, data } => self.configs[target.idx()]
                .write(*addr, data)
                .map(|()| Vec::new()),
        };
        (req.req_id, result)
    }
}

/// DSN scheme used by the mock (reversible for assertions).
const DSN_BASE_MOCK: u64 = 0xB000_0000;

fn dsn_of(id: NodeId) -> u64 {
    DSN_BASE_MOCK | u64::from(id.0)
}

/// Runs a full discovery over the mock fabric, delivering completions in
/// an order chosen by `shuffler` (None = FIFO).
fn drive(topo: &Topology, algorithm: Algorithm, mut shuffler: Option<SimRng>) -> (Engine, u64) {
    let mut fabric = MockFabric::new(topo);
    let host = fabric.host;
    let host_info = *fabric.configs[host.idx()].info();
    let host_ports: Vec<PortInfo> = (0..host_info.port_count)
        .map(|p| *fabric.configs[host.idx()].port(p).unwrap())
        .collect();

    let cfg = EngineConfig::new(algorithm, asi_proto::MAX_POOL_BITS);
    let (mut engine, first) = Engine::start(cfg, host_info, &host_ports);
    let mut inbox: VecDeque<OutRequest> = first.into();
    let mut steps = 0u64;
    let mut max_outstanding = 0usize;
    while !engine.is_done() {
        max_outstanding = max_outstanding.max(engine.outstanding());
        // Pick the next completion to deliver.
        let idx = match shuffler.as_mut() {
            Some(rng) if inbox.len() > 1 => rng.gen_index(inbox.len()),
            _ => 0,
        };
        let req = inbox.remove(idx).expect("engine is not done but idle");
        let (req_id, result) = fabric.service(&req);
        let out = engine.handle_completion(req_id, result.as_deref().map_err(|e| *e));
        inbox.extend(out);
        steps += 1;
        assert!(steps < 1_000_000, "discovery did not converge");
    }
    assert!(
        inbox.is_empty(),
        "engine finished with undelivered requests"
    );
    if matches!(algorithm, Algorithm::SerialPacket) {
        assert_eq!(max_outstanding, 1, "Serial Packet overlapped requests");
    }
    (engine, steps)
}

fn assert_matches_truth(engine: &Engine, topo: &Topology) {
    let truth: BTreeSet<u64> = topo.nodes().map(|(id, _)| dsn_of(id)).collect();
    let found: BTreeSet<u64> = engine.db.devices().map(|d| d.info.dsn).collect();
    assert_eq!(found, truth, "device sets differ");
    assert_eq!(
        engine.db.link_count(),
        topo.links().len(),
        "link counts differ"
    );
    for d in engine.db.devices() {
        assert!(d.ports_complete(), "{:x} ports incomplete", d.info.dsn);
    }
}

#[test]
fn mock_discovery_matches_truth_on_reference_topologies() {
    for topo in [
        mesh(3, 3).topology,
        torus(4, 4).topology,
        fat_tree(4, 3).topology,
        fat_tree(8, 2).topology,
    ] {
        for alg in Algorithm::all() {
            let (engine, _) = drive(&topo, alg, None);
            assert_matches_truth(&engine, &topo);
        }
    }
}

#[test]
fn serial_device_outstanding_bounded_by_one_device_burst() {
    // Serial Device may only parallelize within the current device: its
    // outstanding requests never exceed the port reads of one 16-port
    // switch (8 reads, 2 ports per read).
    for topo in [mesh(4, 4).topology, torus(4, 4).topology] {
        let (engine, _) = drive(&topo, Algorithm::SerialDevice, None);
        let max = engine.stats().max_outstanding;
        assert!(max <= 8, "Serial Device overlapped {max} requests");
        assert!(max >= 2, "Serial Device never parallelized port reads");
    }
}

#[test]
fn parallel_goes_wide() {
    let topo = mesh(4, 4).topology;
    let (engine, _) = drive(&topo, Algorithm::Parallel, None);
    assert!(
        engine.stats().max_outstanding > 8,
        "Parallel should exceed any single-device burst, got {}",
        engine.stats().max_outstanding
    );
}

#[test]
fn all_algorithms_find_identical_topologies() {
    // The three algorithms trade time, not coverage: their final device
    // and link sets must be identical.
    let topo = fat_tree(4, 3).topology;
    let mut sets = Vec::new();
    for alg in Algorithm::all() {
        let (engine, _) = drive(&topo, alg, None);
        let devices: BTreeSet<u64> = engine.db.devices().map(|d| d.info.dsn).collect();
        let mut links: Vec<_> = engine.db.links().collect();
        links.sort_unstable();
        sets.push((devices, links));
    }
    assert_eq!(sets[0], sets[1]);
    assert_eq!(sets[1], sets[2]);
}

#[test]
fn serial_packet_request_count_is_deterministic() {
    let topo = mesh(4, 4).topology;
    let (e1, s1) = drive(&topo, Algorithm::SerialPacket, None);
    let (e2, s2) = drive(&topo, Algorithm::SerialPacket, None);
    assert_eq!(s1, s2);
    assert_eq!(e1.stats(), e2.stats());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random irregular fabrics are fully discovered by every algorithm,
    /// regardless of the order completions arrive in (the Parallel
    /// algorithm is explicitly order-independent: "the order in which
    /// devices are discovered is not deterministic", paper §3.3).
    #[test]
    fn random_fabrics_fully_discovered(
        seed in any::<u64>(),
        switches in 2usize..14,
        extra in 0usize..8,
        order_seed in any::<u64>(),
    ) {
        let mut rng = SimRng::new(seed);
        let topo = irregular(
            IrregularSpec {
                switches,
                extra_links: extra,
                endpoints_per_switch: 1,
            },
            &mut rng,
        );
        for alg in Algorithm::all() {
            let shuffler = match alg {
                Algorithm::Parallel => Some(SimRng::new(order_seed)),
                _ => None,
            };
            let (engine, _) = drive(&topo, alg, shuffler);
            let truth: BTreeSet<u64> = topo.nodes().map(|(id, _)| dsn_of(id)).collect();
            let found: BTreeSet<u64> = engine.db.devices().map(|d| d.info.dsn).collect();
            prop_assert_eq!(&found, &truth, "{} device sets differ", alg);
            prop_assert_eq!(engine.db.link_count(), topo.links().len());
        }
    }

    /// The discovered database's own route computation produces routes
    /// that execute correctly over the ground truth.
    #[test]
    fn db_routes_execute_on_ground_truth(seed in any::<u64>(), switches in 2usize..10) {
        let mut rng = SimRng::new(seed);
        let topo = irregular(
            IrregularSpec {
                switches,
                extra_links: 3,
                endpoints_per_switch: 1,
            },
            &mut rng,
        );
        let (engine, _) = drive(&topo, Algorithm::Parallel, None);
        let db = &engine.db;
        let host = db.host_dsn();
        let host_node = NodeId((host ^ DSN_BASE_MOCK) as u32);
        for dev in db.devices() {
            if dev.info.dsn == host {
                continue;
            }
            let route = db
                .route_between(host, dev.info.dsn, asi_proto::MAX_POOL_BITS)
                .expect("route exists")
                .expect("pool fits");
            // Walk it over the ground truth.
            let mut at = topo.peer(host_node, route.egress).expect("host port linked");
            let mut cursor = TurnCursor::start(&route.pool, Direction::Forward);
            while !cursor.exhausted(&route.pool) {
                let node = topo.node(at.node).unwrap();
                prop_assert_eq!(node.device_type, DeviceType::Switch);
                let (turn, next) = cursor
                    .take_turn(&route.pool, turn_width(node.ports))
                    .expect("valid turn");
                let egress = apply_forward(at.port, turn, node.ports);
                at = topo.peer(at.node, egress).expect("linked");
                cursor = next;
            }
            prop_assert_eq!(dsn_of(at.node), dev.info.dsn, "route landed wrong");
            prop_assert_eq!(at.port, route.entry_port);
        }
    }
}
