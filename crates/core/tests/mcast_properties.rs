//! Property tests for multicast tree planning: over random topologies and
//! member sets, the planned tables must deliver exactly one copy to every
//! other member, from *any* member as source, without loops.

use asi_core::{plan_multicast, DeviceRoute, McastWrite, TopologyDb};
use asi_proto::{DeviceInfo, DeviceType, TurnPool};
use asi_sim::SimRng;
use asi_topo::{irregular, mesh, torus, IrregularSpec, NodeId, Topology};
use proptest::prelude::*;
use std::collections::HashMap;

const DSN: u64 = 0xC000_0000;

fn dsn_of(id: NodeId) -> u64 {
    DSN | u64::from(id.0)
}

/// Imports a ground-truth topology into a TopologyDb (as a completed
/// discovery would).
fn db_of(topo: &Topology) -> TopologyDb {
    let host = topo.endpoints()[0];
    let mut db = TopologyDb::new(dsn_of(host));
    for (id, node) in topo.nodes() {
        db.insert_device(
            DeviceInfo {
                device_type: node.device_type,
                dsn: dsn_of(id),
                port_count: u16::from(node.ports),
                max_packet_size: 2048,
                fm_capable: node.device_type == DeviceType::Endpoint,
                fm_priority: 0,
            },
            DeviceRoute {
                egress: 0,
                pool: TurnPool::new_spec(),
                entry_port: 0,
                hops: 0,
            },
        );
    }
    for link in topo.links() {
        db.add_link(
            (dsn_of(link.a.node), link.a.port),
            (dsn_of(link.b.node), link.b.port),
        );
    }
    db
}

/// Abstract replication over the planned tables: returns per-member copy
/// counts when `source` injects, or None when a loop guard trips.
fn simulate(topo: &Topology, plan: &[McastWrite], source: NodeId) -> Option<HashMap<NodeId, u32>> {
    let masks: HashMap<u64, u32> = plan.iter().map(|w| (w.target_dsn, w.mask)).collect();
    let mut delivered: HashMap<NodeId, u32> = HashMap::new();
    // (node, ingress port) frontier; source injects on its single port.
    let mut frontier = vec![(
        topo.peer(source, 0).expect("member attached").node,
        topo.peer(source, 0).unwrap().port,
        64u8, // hop budget
    )];
    let mut steps = 0;
    while let Some((node, ingress, hops)) = frontier.pop() {
        steps += 1;
        if steps > 100_000 {
            return None; // replication storm
        }
        let n = topo.node(node).unwrap();
        match n.device_type {
            DeviceType::Endpoint => {
                if masks.get(&dsn_of(node)).copied().unwrap_or(0) != 0 {
                    *delivered.entry(node).or_default() += 1;
                }
            }
            DeviceType::Switch => {
                if hops == 0 {
                    return None;
                }
                let mask = masks.get(&dsn_of(node)).copied().unwrap_or(0);
                for p in 0..n.ports.min(32) {
                    if p == ingress || (mask >> p) & 1 == 0 {
                        continue;
                    }
                    if let Some(peer) = topo.peer(node, p) {
                        frontier.push((peer.node, peer.port, hops - 1));
                    }
                }
            }
        }
    }
    Some(delivered)
}

fn check_exactly_once(topo: &Topology, members: &[NodeId]) {
    let db = db_of(topo);
    let dsns: Vec<u64> = members.iter().map(|&m| dsn_of(m)).collect();
    let plan = plan_multicast(&db, 0, &dsns).expect("plan succeeds");
    for &source in members {
        let delivered = simulate(topo, &plan, source).expect("loop guard must not trip");
        for &m in members {
            let copies = delivered.get(&m).copied().unwrap_or(0);
            if m == source {
                assert_eq!(copies, 0, "source echoed to itself");
            } else {
                assert_eq!(copies, 1, "member {m} got {copies} copies from {source}");
            }
        }
        // Nobody outside the group hears anything.
        for (&n, &c) in &delivered {
            assert!(members.contains(&n) || c == 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn meshes_deliver_exactly_once(
        w in 2usize..6,
        h in 2usize..6,
        wrap in any::<bool>(),
        picks in proptest::collection::vec(any::<prop::sample::Index>(), 2..6),
    ) {
        let g = if wrap { torus(w, h) } else { mesh(w, h) };
        let eps = g.topology.endpoints();
        let mut members: Vec<NodeId> = picks.iter().map(|i| *i.get(&eps)).collect();
        members.sort_unstable();
        members.dedup();
        prop_assume!(members.len() >= 2);
        check_exactly_once(&g.topology, &members);
    }

    #[test]
    fn irregular_fabrics_deliver_exactly_once(
        seed in any::<u64>(),
        switches in 2usize..12,
        extra in 0usize..6,
        picks in proptest::collection::vec(any::<prop::sample::Index>(), 2..5),
    ) {
        let mut rng = SimRng::new(seed);
        let topo = irregular(
            IrregularSpec {
                switches,
                extra_links: extra,
                endpoints_per_switch: 1,
            },
            &mut rng,
        );
        let eps = topo.endpoints();
        let mut members: Vec<NodeId> = picks.iter().map(|i| *i.get(&eps)).collect();
        members.sort_unstable();
        members.dedup();
        prop_assume!(members.len() >= 2);
        check_exactly_once(&topo, &members);
    }
}
