//! FM failover: a secondary manager watches the primary with keepalive
//! reads and takes over discovery when the primary endpoint dies — the
//! "fabric management failover" feature the ASI spec requires (paper §2).

use asi_core::{
    fm::StandbyConfig, Algorithm, DiscoveryTrigger, FmAgent, FmConfig, TOKEN_START_DISCOVERY,
    TOKEN_START_STANDBY,
};
use asi_fabric::{DevId, Fabric, FabricConfig, DSN_BASE};
use asi_sim::{SimDuration, SimTime};
use asi_topo::{mesh, shortest_route};
use std::collections::BTreeSet;

#[test]
fn secondary_takes_over_when_primary_dies() {
    let g = mesh(3, 3);
    let topo = &g.topology;
    let mut fabric = Fabric::new(topo, FabricConfig::default());
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();

    let primary_node = g.endpoint_at(0, 0);
    let secondary_node = g.endpoint_at(2, 2);
    let primary = DevId(primary_node.0);
    let secondary = DevId(secondary_node.0);

    // Primary runs a normal discovery.
    fabric.set_agent(
        primary,
        Box::new(FmAgent::new(FmConfig::new(Algorithm::Parallel))),
    );
    fabric.schedule_agent_timer(primary, SimDuration::ZERO, TOKEN_START_DISCOVERY);

    // Secondary watches the primary.
    let watch = shortest_route(topo, secondary_node, primary_node).unwrap();
    let pool = watch.encode(topo, asi_proto::MAX_POOL_BITS).unwrap();
    let mut cfg = FmConfig::new(Algorithm::Parallel);
    cfg.standby = Some(StandbyConfig::new(watch.source_port, pool));
    fabric.set_agent(secondary, Box::new(FmAgent::new(cfg)));
    fabric.schedule_agent_timer(secondary, SimDuration::from_us(5), TOKEN_START_STANDBY);

    // Let the primary finish and the secondary exchange some keepalives.
    fabric.run_until(SimTime::from_ms(5));
    {
        let p = fabric.agent_as::<FmAgent>(primary).unwrap();
        assert_eq!(p.runs.len(), 1);
        let s = fabric.agent_as::<FmAgent>(secondary).unwrap();
        assert!(!s.promoted, "secondary promoted while primary alive");
        assert!(s.runs.is_empty());
    }

    // Kill the primary endpoint. Keepalives start missing; after the
    // threshold the secondary promotes and discovers the fabric itself.
    fabric.schedule_deactivate(primary, SimDuration::ZERO);
    fabric.run_until(SimTime::from_ms(30));
    // The keepalive loop keeps running (the promoted secondary stops
    // arming it, so the queue drains).
    fabric.run_until_idle();

    let s = fabric.agent_as::<FmAgent>(secondary).unwrap();
    assert!(s.promoted, "secondary never took over");
    let run = s.last_run().expect("failover discovery ran");
    assert_eq!(run.trigger, DiscoveryTrigger::Failover);

    // The secondary's database covers exactly the surviving fabric (the
    // dead primary endpoint is absent).
    let expected: BTreeSet<u64> = fabric
        .active_reachable(secondary)
        .into_iter()
        .map(|d| DSN_BASE | u64::from(d.0))
        .collect();
    let found: BTreeSet<u64> = s.db().unwrap().devices().map(|d| d.info.dsn).collect();
    assert_eq!(found, expected);
    assert_eq!(found.len(), 17, "only the primary endpoint disappeared");
    assert!(!found.contains(&(DSN_BASE | u64::from(primary.0))));
}

#[test]
fn keepalives_do_not_disturb_a_healthy_primary() {
    let g = mesh(3, 3);
    let topo = &g.topology;
    let mut fabric = Fabric::new(topo, FabricConfig::default());
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();

    let primary_node = g.endpoint_at(0, 0);
    let secondary_node = g.endpoint_at(1, 1);
    let primary = DevId(primary_node.0);
    let secondary = DevId(secondary_node.0);

    fabric.set_agent(
        primary,
        Box::new(FmAgent::new(FmConfig::new(Algorithm::SerialDevice))),
    );
    fabric.schedule_agent_timer(primary, SimDuration::ZERO, TOKEN_START_DISCOVERY);

    let watch = shortest_route(topo, secondary_node, primary_node).unwrap();
    let pool = watch.encode(topo, asi_proto::MAX_POOL_BITS).unwrap();
    let mut cfg = FmConfig::new(Algorithm::Parallel);
    cfg.standby = Some(StandbyConfig::new(watch.source_port, pool));
    fabric.set_agent(secondary, Box::new(FmAgent::new(cfg)));
    fabric.schedule_agent_timer(secondary, SimDuration::ZERO, TOKEN_START_STANDBY);

    // Run a long stretch: keepalives flow the whole time.
    fabric.run_until(SimTime::from_ms(20));
    let s = fabric.agent_as::<FmAgent>(secondary).unwrap();
    assert!(!s.promoted, "false takeover");
    assert!(s.runs.is_empty());
    let p = fabric.agent_as::<FmAgent>(primary).unwrap();
    assert_eq!(p.runs.len(), 1);
    assert_eq!(p.db().unwrap().device_count(), 18);
}
