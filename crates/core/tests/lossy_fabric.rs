//! Discovery over a lossy fabric: injected receiver-side CRC drops must
//! not wedge the manager, and with a retry budget the full topology is
//! still found — robustness the paper's loss-free OPNET links never
//! exercised.

use asi_core::{Algorithm, FmAgent, FmConfig, TOKEN_START_DISCOVERY};
use asi_fabric::{DevId, Fabric, FabricConfig};
use asi_sim::SimDuration;
use asi_topo::mesh;

fn run_lossy(loss_rate: f64, max_retries: u32, seed: u64) -> (usize, u64, u64) {
    let g = mesh(3, 3);
    let config = FabricConfig {
        loss_rate,
        seed,
        ..FabricConfig::default()
    };
    let mut fabric = Fabric::new(&g.topology, config);
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();
    let fm = DevId(g.endpoint_at(0, 0).0);
    let mut cfg = FmConfig::new(Algorithm::Parallel);
    cfg.max_retries = max_retries;
    cfg.request_timeout = SimDuration::from_us(500);
    fabric.set_agent(fm, Box::new(FmAgent::new(cfg)));
    fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    fabric.run_until_idle();

    let corrupted = fabric.counters().dropped_corrupted;
    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    let run = agent.last_run().expect("run terminates even with loss");
    (run.devices_found, run.timeouts, corrupted)
}

#[test]
fn lossless_fabric_injects_no_corruption() {
    let (devices, timeouts, corrupted) = run_lossy(0.0, 0, 1);
    assert_eq!(devices, 18);
    assert_eq!(timeouts, 0);
    assert_eq!(corrupted, 0);
}

#[test]
fn loss_without_retries_degrades_but_terminates() {
    // 10% loss per traversal: some probes/completions vanish; the run
    // must still drain via timeouts.
    let mut any_loss_seen = false;
    for seed in 1..=5u64 {
        let (devices, timeouts, corrupted) = run_lossy(0.10, 0, seed);
        assert!(devices <= 18);
        any_loss_seen |= corrupted > 0;
        if corrupted > 0 {
            assert!(timeouts > 0, "seed {seed}: losses but no timeouts");
        }
    }
    assert!(any_loss_seen, "loss injection never fired across 5 seeds");
}

#[test]
fn retries_recover_the_full_topology_under_loss() {
    // With 5% loss and a generous retry budget, every seed must converge
    // to the complete 18-device database.
    for seed in 1..=8u64 {
        let (devices, timeouts, corrupted) = run_lossy(0.05, 8, seed);
        assert_eq!(
            devices, 18,
            "seed {seed}: incomplete discovery ({corrupted} losses, {timeouts} timeouts)"
        );
    }
}

#[test]
fn retries_are_idempotent_when_the_completion_was_lost() {
    // Even when the *response* (not the request) is what got dropped,
    // the re-issued read executes again harmlessly: final database and
    // link sets must be exactly the ground truth.
    let g = mesh(3, 3);
    for seed in [3u64, 7, 11] {
        let config = FabricConfig {
            loss_rate: 0.08,
            seed,
            ..FabricConfig::default()
        };
        let mut fabric = Fabric::new(&g.topology, config);
        fabric.set_event_limit(50_000_000);
        fabric.activate_all(SimDuration::ZERO);
        fabric.run_until_idle();
        let fm = DevId(g.endpoint_at(0, 0).0);
        let mut cfg = FmConfig::new(Algorithm::SerialDevice);
        cfg.max_retries = 10;
        cfg.request_timeout = SimDuration::from_us(500);
        fabric.set_agent(fm, Box::new(FmAgent::new(cfg)));
        fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
        fabric.run_until_idle();
        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        let db = agent.db().unwrap();
        assert_eq!(db.device_count(), 18, "seed {seed}");
        assert_eq!(db.link_count(), g.topology.links().len(), "seed {seed}");
        for d in db.devices() {
            assert!(d.ports_complete(), "seed {seed}: {:x}", d.info.dsn);
        }
    }
}
