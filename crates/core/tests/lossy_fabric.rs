//! Discovery over a faulty fabric: injected receiver-side CRC drops,
//! bursty loss, completion corruption/duplication and scheduled device
//! faults must not wedge the manager, and with a retry budget the full
//! topology is still found — robustness the paper's loss-free OPNET
//! links never exercised.

use asi_core::{Algorithm, FmAgent, FmConfig, RetryPolicy, TOKEN_START_DISCOVERY};
use asi_fabric::{DevId, Fabric, FabricConfig, FaultPlan, LossModel};
use asi_sim::SimDuration;
use asi_topo::mesh;

fn run_faulty(faults: FaultPlan, retry: RetryPolicy, seed: u64) -> (usize, u64, u64, u64, u64) {
    let g = mesh(3, 3);
    let config = FabricConfig {
        faults,
        seed,
        ..FabricConfig::default()
    };
    let mut fabric = Fabric::new(&g.topology, config);
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();
    let fm = DevId(g.endpoint_at(0, 0).0);
    let cfg = FmConfig::new(Algorithm::Parallel)
        .with_retry(retry)
        .with_request_timeout(SimDuration::from_us(500));
    fabric.set_agent(fm, Box::new(FmAgent::new(cfg)));
    fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    fabric.run_until_idle();

    let corrupted = fabric.counters().dropped_corrupted;
    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    let run = agent.last_run().expect("run terminates even with loss");
    (
        run.devices_found,
        run.timeouts,
        corrupted,
        run.retries,
        run.abandoned,
    )
}

fn uniform(p: f64) -> FaultPlan {
    FaultPlan::none().with_loss(LossModel::uniform(p))
}

#[test]
fn lossless_fabric_injects_no_corruption() {
    let (devices, timeouts, corrupted, retries, abandoned) =
        run_faulty(FaultPlan::none(), RetryPolicy::fixed(0), 1);
    assert_eq!(devices, 18);
    assert_eq!(timeouts, 0);
    assert_eq!(corrupted, 0);
    assert_eq!(retries, 0);
    assert_eq!(abandoned, 0);
}

#[test]
fn loss_without_retries_degrades_but_terminates() {
    // 10% loss per traversal: some probes/completions vanish; the run
    // must still drain via timeouts, and every timeout is an abandon
    // under the paper's no-retry default.
    let mut any_loss_seen = false;
    for seed in 1..=5u64 {
        let (devices, timeouts, corrupted, retries, abandoned) =
            run_faulty(uniform(0.10), RetryPolicy::fixed(0), seed);
        assert!(devices <= 18);
        assert_eq!(retries, 0);
        assert_eq!(abandoned, timeouts, "seed {seed}");
        any_loss_seen |= corrupted > 0;
        if corrupted > 0 {
            assert!(timeouts > 0, "seed {seed}: losses but no timeouts");
        }
    }
    assert!(any_loss_seen, "loss injection never fired across 5 seeds");
}

#[test]
fn retries_recover_the_full_topology_under_loss() {
    // With 5% loss and a generous retry budget, every seed must converge
    // to the complete 18-device database.
    for seed in 1..=8u64 {
        let (devices, timeouts, corrupted, ..) =
            run_faulty(uniform(0.05), RetryPolicy::fixed(8), seed);
        assert_eq!(
            devices, 18,
            "seed {seed}: incomplete discovery ({corrupted} losses, {timeouts} timeouts)"
        );
    }
}

#[test]
fn exponential_backoff_recovers_under_bursty_loss() {
    // Bursty (Gilbert–Elliott) loss concentrates drops; exponential
    // backoff spreads the retries past the burst. Every seed must still
    // converge to the full topology.
    let mut any_retry_seen = false;
    for seed in 1..=8u64 {
        let plan = FaultPlan::none().with_loss(LossModel::bursty(0.05));
        let (devices, _, _, retries, _) = run_faulty(plan, RetryPolicy::exponential(10), seed);
        assert_eq!(devices, 18, "seed {seed}: incomplete discovery");
        any_retry_seen |= retries > 0;
    }
    assert!(any_retry_seen, "bursty loss never forced a retry");
}

#[test]
fn deadline_policy_terminates_and_bounds_waiting() {
    // A deadline of 4 base timeouts allows a few retries per request but
    // must always terminate; under heavy loss some requests may be
    // abandoned, which shows up in the degradation metrics.
    for seed in 1..=4u64 {
        let (devices, timeouts, _, retries, abandoned) = run_faulty(
            uniform(0.20),
            RetryPolicy::deadline(SimDuration::from_us(2_000)),
            seed,
        );
        assert!(devices <= 18);
        assert_eq!(timeouts, retries + abandoned, "seed {seed}");
    }
}

#[test]
fn corrupted_completions_are_retried_transparently() {
    // Corruption drops the completion at delivery (CRC check): the
    // request times out and the retry recovers the read.
    let mut any_corruption = false;
    for seed in 1..=6u64 {
        let plan = FaultPlan::none().with_corruption(0.05);
        let (devices, _, corrupted, ..) = run_faulty(plan, RetryPolicy::fixed(8), seed);
        assert_eq!(devices, 18, "seed {seed}");
        any_corruption |= corrupted > 0;
    }
    assert!(any_corruption, "corruption injection never fired");
}

#[test]
fn duplicated_completions_are_ignored_by_the_engine() {
    // A duplicated completion arrives with a req-id that is no longer
    // pending; the engine must discard it without perturbing the result.
    for seed in 1..=6u64 {
        let plan = FaultPlan::none().with_duplication(0.20);
        let (devices, timeouts, ..) = run_faulty(plan, RetryPolicy::fixed(0), seed);
        assert_eq!(devices, 18, "seed {seed}");
        assert_eq!(timeouts, 0, "seed {seed}: duplication caused a timeout");
    }
}

#[test]
fn retries_are_idempotent_when_the_completion_was_lost() {
    // Even when the *response* (not the request) is what got dropped,
    // the re-issued read executes again harmlessly: final database and
    // link sets must be exactly the ground truth.
    let g = mesh(3, 3);
    for seed in [3u64, 7, 11] {
        let config = FabricConfig {
            faults: uniform(0.08),
            seed,
            ..FabricConfig::default()
        };
        let mut fabric = Fabric::new(&g.topology, config);
        fabric.set_event_limit(50_000_000);
        fabric.activate_all(SimDuration::ZERO);
        fabric.run_until_idle();
        let fm = DevId(g.endpoint_at(0, 0).0);
        let cfg = FmConfig::new(Algorithm::SerialDevice)
            .with_retry(RetryPolicy::fixed(10))
            .with_request_timeout(SimDuration::from_us(500));
        fabric.set_agent(fm, Box::new(FmAgent::new(cfg)));
        fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
        fabric.run_until_idle();
        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        let db = agent.db().unwrap();
        assert_eq!(db.device_count(), 18, "seed {seed}");
        assert_eq!(db.link_count(), g.topology.links().len(), "seed {seed}");
        for d in db.devices() {
            assert!(d.ports_complete(), "seed {seed}: {:x}", d.info.dsn);
        }
    }
}

#[test]
fn device_hang_defers_but_does_not_lose_discovery() {
    // Hang a mid-fabric switch for 2 ms right as discovery starts: its
    // completions are deferred past the hang, forcing timeouts/retries,
    // but the full topology must still come back.
    let g = mesh(3, 3);
    let hung = g.switch_at(1, 1).0;
    let plan =
        FaultPlan::none().with_device_hang(SimDuration::from_us(10), hung, SimDuration::from_ms(2));
    let (devices, timeouts, _, retries, _) = run_faulty(plan, RetryPolicy::exponential(10), 1);
    assert_eq!(devices, 18);
    assert!(timeouts > 0, "hang never forced a timeout");
    assert!(retries > 0, "hang never forced a retry");
}

#[test]
fn device_slow_stretches_but_completes_discovery() {
    let g = mesh(3, 3);
    let slow = g.switch_at(1, 1).0;
    let plan =
        FaultPlan::none().with_device_slow(SimDuration::ZERO, slow, 20.0, SimDuration::from_ms(50));
    let (devices, ..) = run_faulty(plan, RetryPolicy::exponential(10), 1);
    assert_eq!(devices, 18);
}

#[test]
fn scheduled_link_flap_is_assimilated() {
    // Flap a link long after initial discovery: the FM sees PortDown /
    // PortUp PI-5 events and re-discovers; the database must end at the
    // full topology either way.
    let g = mesh(3, 3);
    let dev = g.switch_at(0, 0).0;
    // Port 0 (east) of the corner switch connects to the next column.
    let plan = FaultPlan::none().with_link_flap(
        SimDuration::from_ms(40),
        dev,
        0,
        SimDuration::from_us(200),
    );
    let config = FabricConfig {
        faults: plan,
        seed: 5,
        ..FabricConfig::default()
    };
    let mut fabric = Fabric::new(&g.topology, config);
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    // Settle only up to 5 ms so the 40 ms flap fires with the FM
    // installed (run_until_idle would drain the scheduled fault too).
    fabric.run_until(asi_sim::SimTime::from_ms(5));
    let fm = DevId(g.endpoint_at(0, 0).0);
    let cfg = FmConfig::new(Algorithm::Parallel).with_request_timeout(SimDuration::from_us(500));
    fabric.set_agent(fm, Box::new(FmAgent::new(cfg)));
    fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    // Let the initial discovery finish (well before the 40 ms flap),
    // then install PI-5 reporting routes from the FM's own database.
    fabric.run_until(asi_sim::SimTime::from_ms(30));
    let routes: Vec<(u64, asi_core::DeviceRoute)> = {
        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        let db = agent.db().expect("initial discovery finished");
        db.devices()
            .filter(|d| d.info.dsn != db.host_dsn())
            .filter_map(|d| {
                db.route_between(d.info.dsn, db.host_dsn(), asi_proto::MAX_POOL_BITS)
                    .and_then(Result::ok)
                    .map(|r| (d.info.dsn, r))
            })
            .collect()
    };
    for (dsn, r) in routes {
        fabric.set_fm_route(
            DevId((dsn & 0xFFFF_FFFF) as u32),
            asi_fabric::FmRoute {
                egress: r.egress,
                pool: r.pool,
            },
        );
    }
    fabric.run_until_idle();
    assert!(fabric.counters().link_flaps > 0, "flap never fired");
    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    assert!(agent.runs().len() >= 2, "flap did not trigger re-discovery");
    let db = agent.db().unwrap();
    assert_eq!(db.device_count(), 18);
    assert_eq!(db.link_count(), g.topology.links().len());
}
