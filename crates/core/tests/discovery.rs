//! End-to-end discovery tests: the fabric manager runs each of the
//! paper's three algorithms over simulated fabrics and must reconstruct
//! the exact ground-truth topology.

use asi_core::{Algorithm, FmAgent, FmConfig, TOKEN_START_DISCOVERY};
use asi_fabric::{DevId, Fabric, FabricConfig, FmRoute, DSN_BASE};
use asi_sim::SimDuration;
use asi_topo::{mesh, torus, Table1, Topology};
use std::collections::BTreeSet;

fn dev_of_dsn(dsn: u64) -> DevId {
    DevId((dsn & 0xFFFF_FFFF) as u32)
}

/// Brings up a fabric with an FM on the first endpoint and runs the
/// initial discovery to completion.
fn discover(topo: &Topology, algorithm: Algorithm) -> (Fabric, DevId) {
    let mut fabric = Fabric::new(topo, FabricConfig::default());
    fabric.set_event_limit(20_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();

    let fm_node = asi_topo::default_fm_endpoint(topo).expect("an endpoint exists");
    let fm = DevId(fm_node.0);
    fabric.set_agent(fm, Box::new(FmAgent::new(FmConfig::new(algorithm))));
    fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    fabric.run_until_idle();
    (fabric, fm)
}

/// Ground-truth device DSNs and link set of a topology.
type LinkKey = (u64, u8, u64, u8);

fn ground_truth(topo: &Topology) -> (BTreeSet<u64>, BTreeSet<LinkKey>) {
    let devices: BTreeSet<u64> = topo
        .nodes()
        .map(|(id, _)| DSN_BASE | u64::from(id.0))
        .collect();
    let links: BTreeSet<(u64, u8, u64, u8)> = topo
        .links()
        .iter()
        .map(|l| {
            let a = (DSN_BASE | u64::from(l.a.node.0), l.a.port);
            let b = (DSN_BASE | u64::from(l.b.node.0), l.b.port);
            if a <= b {
                (a.0, a.1, b.0, b.1)
            } else {
                (b.0, b.1, a.0, a.1)
            }
        })
        .collect();
    (devices, links)
}

fn assert_db_matches(fabric: &Fabric, fm: DevId, topo: &Topology) {
    let agent = fabric.agent_as::<FmAgent>(fm).expect("FM installed");
    let db = agent.db().expect("discovery completed");
    let (devices, links) = ground_truth(topo);
    let found: BTreeSet<u64> = db.devices().map(|d| d.info.dsn).collect();
    assert_eq!(found, devices, "device sets differ");
    let found_links: BTreeSet<LinkKey> = db
        .links()
        .map(|((a, ap), (b, bp))| {
            if (a, ap) <= (b, bp) {
                (a, ap, b, bp)
            } else {
                (b, bp, a, ap)
            }
        })
        .collect();
    assert_eq!(found_links, links, "link sets differ");
    // Every discovered device's port map must be complete.
    for d in db.devices() {
        assert!(d.ports_complete(), "ports of {:x} incomplete", d.info.dsn);
    }
}

#[test]
fn all_algorithms_reconstruct_a_3x3_mesh() {
    let g = mesh(3, 3);
    for alg in Algorithm::all() {
        let (fabric, fm) = discover(&g.topology, alg);
        assert_db_matches(&fabric, fm, &g.topology);
        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        let run = agent.last_run().unwrap();
        assert_eq!(run.timeouts, 0, "{alg}: unexpected timeouts");
        assert!(run.requests_sent > 0);
        assert_eq!(run.requests_sent, run.responses_received, "{alg}");
    }
}

#[test]
fn all_algorithms_reconstruct_a_4x4_torus() {
    // Tori have wraparound links: plenty of alternate paths to dedup.
    let g = torus(4, 4);
    for alg in Algorithm::all() {
        let (fabric, fm) = discover(&g.topology, alg);
        assert_db_matches(&fabric, fm, &g.topology);
    }
}

#[test]
fn all_algorithms_reconstruct_fat_trees() {
    for spec in [Table1::FatTree(4, 2), Table1::FatTree(8, 2)] {
        let topo = spec.build();
        for alg in Algorithm::all() {
            let (fabric, fm) = discover(&topo, alg);
            assert_db_matches(&fabric, fm, &topo);
        }
    }
}

#[test]
fn serial_packet_keeps_one_request_outstanding() {
    let g = mesh(3, 3);
    let (fabric, fm) = discover(&g.topology, Algorithm::SerialPacket);
    // max_outstanding is internal to the engine; we verify through the
    // run's arithmetic instead: with one request in flight, responses can
    // never outpace requests, and the FM processed them strictly
    // alternately — so the mean gap between timeline points must be at
    // least the full round trip (FM time + transport + device time).
    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    let run = agent.last_run().unwrap();
    let n = run.fm_timeline.len() as u64;
    assert!(n > 10);
    let span = run
        .fm_timeline
        .last_time()
        .unwrap()
        .saturating_since(run.started_at);
    let mean_gap = span / n;
    // Round trip: FM ~19us + device 4us + wire; gap must exceed 22us.
    assert!(
        mean_gap >= SimDuration::from_us(22),
        "serial gap too small: {mean_gap}"
    );
}

#[test]
fn parallel_overlaps_processing() {
    let g = mesh(3, 3);
    let (fabric, fm) = discover(&g.topology, Algorithm::Parallel);
    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    let run = agent.last_run().unwrap();
    // FM-bound: utilization near 1.
    assert!(
        run.fm_utilization() > 0.85,
        "parallel FM should be busy, utilization {}",
        run.fm_utilization()
    );
}

#[test]
fn discovery_time_ordering_matches_the_paper() {
    let g = mesh(4, 4);
    let mut times = Vec::new();
    for alg in Algorithm::all() {
        let (fabric, fm) = discover(&g.topology, alg);
        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        times.push((alg, agent.last_run().unwrap().discovery_time()));
    }
    let sp = times[0].1;
    let sd = times[1].1;
    let pa = times[2].1;
    assert!(
        sd < sp,
        "Serial Device ({sd}) must beat Serial Packet ({sp})"
    );
    assert!(pa < sd, "Parallel ({pa}) must beat Serial Device ({sd})");
}

#[test]
fn rediscovery_after_switch_removal() {
    let g = mesh(3, 3);
    let topo = &g.topology;
    let (mut fabric, fm) = discover(topo, Algorithm::Parallel);

    // Configure PI-5 routes from the FM's own database.
    let routes: Vec<(u64, asi_core::DeviceRoute)> = {
        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        let db = agent.db().unwrap();
        db.devices()
            .filter(|d| d.info.dsn != db.host_dsn())
            .filter_map(|d| {
                db.route_between(d.info.dsn, db.host_dsn(), asi_proto::MAX_POOL_BITS)
                    .and_then(Result::ok)
                    .map(|r| (d.info.dsn, r))
            })
            .collect()
    };
    for (dsn, r) in routes {
        fabric.set_fm_route(
            dev_of_dsn(dsn),
            FmRoute {
                egress: r.egress,
                pool: r.pool,
            },
        );
    }

    // Remove a non-articulation switch (centre of the mesh).
    let victim = DevId(g.switch_at(1, 1).0);
    fabric.schedule_deactivate(victim, SimDuration::from_us(50));
    fabric.run_until_idle();

    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    assert!(agent.pi5_events > 0, "no PI-5 reached the FM");
    assert!(
        agent.runs.len() >= 2,
        "change assimilation did not re-run discovery"
    );
    let db = agent.db().unwrap();
    // Ground truth after removal: reachable actives.
    let expected: BTreeSet<u64> = fabric
        .active_reachable(fm)
        .into_iter()
        .map(|d| DSN_BASE | u64::from(d.0))
        .collect();
    let found: BTreeSet<u64> = db.devices().map(|d| d.info.dsn).collect();
    assert_eq!(found, expected);
    // The victim's endpoint is stranded: 18 - 2 = 16 devices.
    assert_eq!(db.device_count(), 16);
}

#[test]
fn rediscovery_after_switch_addition() {
    let g = mesh(3, 3);
    let topo = &g.topology;
    let newcomer = DevId(g.switch_at(2, 2).0);
    let stranded_ep = DevId(g.endpoint_at(2, 2).0);

    let mut fabric = Fabric::new(topo, FabricConfig::default());
    fabric.set_event_limit(20_000_000);
    for (id, _) in topo.nodes() {
        if DevId(id.0) != newcomer {
            fabric.schedule_activate(DevId(id.0), SimDuration::ZERO);
        }
    }
    fabric.run_until_idle();

    let fm = DevId(g.endpoint_at(0, 0).0);
    fabric.set_agent(
        fm,
        Box::new(FmAgent::new(FmConfig::new(Algorithm::Parallel))),
    );
    fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    fabric.run_until_idle();

    // 18 - switch - its stranded endpoint = 16 found initially.
    {
        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        assert_eq!(agent.db().unwrap().device_count(), 16);
    }

    // Configure PI-5 routes, then hot-add the missing switch.
    let routes: Vec<(u64, asi_core::DeviceRoute)> = {
        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        let db = agent.db().unwrap();
        db.devices()
            .filter(|d| d.info.dsn != db.host_dsn())
            .filter_map(|d| {
                db.route_between(d.info.dsn, db.host_dsn(), asi_proto::MAX_POOL_BITS)
                    .and_then(Result::ok)
                    .map(|r| (d.info.dsn, r))
            })
            .collect()
    };
    for (dsn, r) in routes {
        fabric.set_fm_route(
            dev_of_dsn(dsn),
            FmRoute {
                egress: r.egress,
                pool: r.pool,
            },
        );
    }
    fabric.schedule_activate(newcomer, SimDuration::from_us(50));
    fabric.run_until_idle();

    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    assert!(agent.runs.len() >= 2, "no assimilation run");
    let db = agent.db().unwrap();
    assert_eq!(db.device_count(), 18, "hot-added region not discovered");
    assert!(db.contains(DSN_BASE | u64::from(newcomer.0)));
    assert!(db.contains(DSN_BASE | u64::from(stranded_ep.0)));
}

#[test]
fn discovery_survives_mid_run_removal() {
    // Kill a switch while discovery is in flight: the run must still
    // terminate (via timeouts) rather than hang.
    let g = mesh(4, 4);
    let mut fabric = Fabric::new(&g.topology, FabricConfig::default());
    fabric.set_event_limit(20_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();

    let fm = DevId(g.endpoint_at(0, 0).0);
    fabric.set_agent(
        fm,
        Box::new(FmAgent::new(FmConfig::new(Algorithm::SerialPacket))),
    );
    fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    // Serial discovery of 32 devices takes ~2+ ms; kill at 300us.
    let victim = DevId(g.switch_at(2, 2).0);
    fabric.schedule_deactivate(victim, SimDuration::from_us(300));
    fabric.run_until_idle();

    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    let run = agent.last_run().expect("run must terminate");
    assert!(run.devices_found <= 32);
    // The victim must not be in the final database.
    assert!(
        !agent.db().unwrap().contains(DSN_BASE | u64::from(victim.0)),
        "dead switch lingers in the database"
    );
}

#[test]
fn partial_assimilation_is_cheaper_than_full() {
    let g = mesh(4, 4);
    let topo = &g.topology;

    let run_change = |partial: bool| -> (u64, usize) {
        let mut fabric = Fabric::new(topo, FabricConfig::default());
        fabric.set_event_limit(20_000_000);
        fabric.activate_all(SimDuration::ZERO);
        fabric.run_until_idle();
        let fm = DevId(g.endpoint_at(0, 0).0);
        let cfg = FmConfig::new(Algorithm::Parallel).with_partial_assimilation(partial);
        fabric.set_agent(fm, Box::new(FmAgent::new(cfg)));
        fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
        fabric.run_until_idle();

        let routes: Vec<(u64, asi_core::DeviceRoute)> = {
            let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
            let db = agent.db().unwrap();
            db.devices()
                .filter(|d| d.info.dsn != db.host_dsn())
                .filter_map(|d| {
                    db.route_between(d.info.dsn, db.host_dsn(), asi_proto::MAX_POOL_BITS)
                        .and_then(Result::ok)
                        .map(|r| (d.info.dsn, r))
                })
                .collect()
        };
        for (dsn, r) in routes {
            fabric.set_fm_route(
                dev_of_dsn(dsn),
                FmRoute {
                    egress: r.egress,
                    pool: r.pool,
                },
            );
        }
        let victim = DevId(g.switch_at(2, 2).0);
        fabric.schedule_deactivate(victim, SimDuration::from_us(50));
        fabric.run_until_idle();

        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        let last = agent.last_run().unwrap();
        let expected: BTreeSet<u64> = fabric
            .active_reachable(fm)
            .into_iter()
            .map(|d| DSN_BASE | u64::from(d.0))
            .collect();
        let found: BTreeSet<u64> = agent.db().unwrap().devices().map(|d| d.info.dsn).collect();
        assert_eq!(found, expected, "partial={partial} database wrong");
        (last.requests_sent, agent.db().unwrap().device_count())
    };

    let (full_requests, full_devices) = run_change(false);
    let (partial_requests, partial_devices) = run_change(true);
    assert_eq!(full_devices, partial_devices);
    assert!(
        partial_requests * 3 < full_requests,
        "partial ({partial_requests} reqs) should be far cheaper than full ({full_requests})"
    );
}
