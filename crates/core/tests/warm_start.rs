//! Warm-start discovery end to end: a cold run's database is frozen into
//! an `asi-state` snapshot, a fresh manager seeds from it, verifies the
//! cached topology with one targeted probe per device, and escalates —
//! scoped re-discovery around mismatches, full cold fallback past the
//! threshold — when the fabric changed behind its back.

use asi_core::{
    snapshot_db, Algorithm, DiscoveryTrigger, FmAgent, FmConfig, RetryPolicy, TOKEN_START_DISCOVERY,
};
use asi_fabric::{DevId, Fabric, FabricConfig, FaultPlan, FmRoute, LossModel, DSN_BASE};
use asi_sim::SimDuration;
use asi_state::Snapshot;
use asi_topo::{mesh, Table1, Topology};
use std::collections::BTreeSet;

fn bring_up(topo: &Topology, skip: Option<DevId>) -> Fabric {
    let mut fabric = Fabric::new(topo, FabricConfig::default());
    fabric.set_event_limit(50_000_000);
    match skip {
        None => fabric.activate_all(SimDuration::ZERO),
        Some(victim) => {
            for (id, _) in topo.nodes() {
                if DevId(id.0) != victim {
                    fabric.schedule_activate(DevId(id.0), SimDuration::ZERO);
                }
            }
        }
    }
    fabric.run_until_idle();
    fabric
}

/// Runs one discovery to completion and returns the fabric.
fn run_fm(mut fabric: Fabric, topo: &Topology, cfg: FmConfig) -> (Fabric, DevId) {
    let fm_node = asi_topo::default_fm_endpoint(topo).expect("an endpoint exists");
    let fm = DevId(fm_node.0);
    fabric.set_agent(fm, Box::new(FmAgent::new(cfg)));
    fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    fabric.run_until_idle();
    (fabric, fm)
}

fn snapshot_of(fabric: &Fabric, fm: DevId) -> Snapshot {
    let agent = fabric.agent_as::<FmAgent>(fm).expect("FM installed");
    snapshot_db(agent.db().expect("discovery completed"))
}

fn device_set(fabric: &Fabric, fm: DevId) -> BTreeSet<u64> {
    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    agent.db().unwrap().devices().map(|d| d.info.dsn).collect()
}

fn link_set(fabric: &Fabric, fm: DevId) -> BTreeSet<(u64, u8, u64, u8)> {
    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    agent
        .db()
        .unwrap()
        .links()
        .map(|((a, ap), (b, bp))| {
            if (a, ap) <= (b, bp) {
                (a, ap, b, bp)
            } else {
                (b, bp, a, ap)
            }
        })
        .collect()
}

#[test]
fn warm_start_verifies_unchanged_topologies_cheaply() {
    for spec in Table1::quick() {
        let topo = spec.build();
        let n = topo.nodes().count() as u64;

        let (cold_fabric, cold_fm) = run_fm(
            bring_up(&topo, None),
            &topo,
            FmConfig::new(Algorithm::Parallel),
        );
        let cold_run = cold_fabric
            .agent_as::<FmAgent>(cold_fm)
            .unwrap()
            .last_run()
            .unwrap()
            .clone();
        let snapshot = snapshot_of(&cold_fabric, cold_fm);
        assert_eq!(snapshot.device_count() as u64, n, "{}", spec.name());

        let warm_cfg = FmConfig::new(Algorithm::Parallel).with_warm_start(snapshot);
        let (warm_fabric, warm_fm) = run_fm(bring_up(&topo, None), &topo, warm_cfg);
        let agent = warm_fabric.agent_as::<FmAgent>(warm_fm).unwrap();
        let run = agent.last_run().expect("warm run finished");

        assert_eq!(run.trigger, DiscoveryTrigger::WarmStart, "{}", spec.name());
        assert_eq!(run.probes_verified, n - 1, "{}", spec.name());
        assert_eq!(run.verify_mismatches, 0, "{}", spec.name());
        assert!(!run.warm_fallback, "{}", spec.name());
        // O(devices) probes: exactly one per non-host device — far fewer
        // than the cold run's probe + port-read traffic.
        assert_eq!(run.requests_sent, n - 1, "{}", spec.name());
        assert!(
            run.requests_sent < cold_run.requests_sent,
            "{}: warm sent {} vs cold {}",
            spec.name(),
            run.requests_sent,
            cold_run.requests_sent
        );
        assert!(
            run.discovery_time() < cold_run.discovery_time(),
            "{}: warm {} not faster than cold {}",
            spec.name(),
            run.discovery_time(),
            cold_run.discovery_time()
        );
        // The verified database is the cold database.
        assert_eq!(
            device_set(&warm_fabric, warm_fm),
            device_set(&cold_fabric, cold_fm)
        );
        assert_eq!(
            link_set(&warm_fabric, warm_fm),
            link_set(&cold_fabric, cold_fm)
        );
    }
}

#[test]
fn warm_start_after_switch_removal_converges_to_cold_database() {
    let g = mesh(3, 3);
    let topo = &g.topology;
    let victim = DevId(g.switch_at(1, 1).0);

    // Snapshot the intact fabric.
    let (full_fabric, full_fm) = run_fm(
        bring_up(topo, None),
        topo,
        FmConfig::new(Algorithm::Parallel),
    );
    let snapshot = snapshot_of(&full_fabric, full_fm);

    // Cold baseline on the degraded fabric.
    let (cold_fabric, cold_fm) = run_fm(
        bring_up(topo, Some(victim)),
        topo,
        FmConfig::new(Algorithm::Parallel),
    );

    // Warm start with the stale snapshot on the same degraded fabric;
    // threshold 1.0 forbids the cold fallback, forcing the scoped path.
    let warm_cfg = FmConfig::new(Algorithm::Parallel)
        .with_warm_start(snapshot)
        .with_warm_fallback_threshold(1.0);
    let (warm_fabric, warm_fm) = run_fm(bring_up(topo, Some(victim)), topo, warm_cfg);

    let agent = warm_fabric.agent_as::<FmAgent>(warm_fm).unwrap();
    assert_eq!(agent.runs().len(), 1, "one run spanning all phases");
    let run = agent.last_run().unwrap();
    assert_eq!(run.trigger, DiscoveryTrigger::WarmStart);
    assert!(run.verify_mismatches >= 1, "removal went unnoticed");
    assert!(!run.warm_fallback, "threshold 1.0 must never fall back");
    assert!(run.probes_verified > 0, "untouched devices must verify");

    // Same database as the cold run on the same fabric.
    assert_eq!(
        device_set(&warm_fabric, warm_fm),
        device_set(&cold_fabric, cold_fm)
    );
    assert_eq!(
        link_set(&warm_fabric, warm_fm),
        link_set(&cold_fabric, cold_fm)
    );
    assert!(!device_set(&warm_fabric, warm_fm).contains(&(DSN_BASE | u64::from(victim.0))));
    for d in agent.db().unwrap().devices() {
        assert!(d.ports_complete(), "ports of {:x} incomplete", d.info.dsn);
    }
}

#[test]
fn warm_start_falls_back_when_snapshot_is_too_wrong() {
    let g = mesh(3, 3);
    let topo = &g.topology;
    let victim = DevId(g.switch_at(1, 1).0);

    let (full_fabric, full_fm) = run_fm(
        bring_up(topo, None),
        topo,
        FmConfig::new(Algorithm::Parallel),
    );
    let snapshot = snapshot_of(&full_fabric, full_fm);

    // Threshold 0.0: a single mismatch abandons the snapshot.
    let warm_cfg = FmConfig::new(Algorithm::Parallel)
        .with_warm_start(snapshot)
        .with_warm_fallback_threshold(0.0);
    let (warm_fabric, warm_fm) = run_fm(bring_up(topo, Some(victim)), topo, warm_cfg);
    let (cold_fabric, cold_fm) = run_fm(
        bring_up(topo, Some(victim)),
        topo,
        FmConfig::new(Algorithm::Parallel),
    );

    let agent = warm_fabric.agent_as::<FmAgent>(warm_fm).unwrap();
    let run = agent.last_run().unwrap();
    assert!(
        run.warm_fallback,
        "mismatches above threshold must fall back"
    );
    assert_eq!(run.trigger, DiscoveryTrigger::WarmStart);
    assert!(run.verify_mismatches >= 1);
    assert_eq!(
        device_set(&warm_fabric, warm_fm),
        device_set(&cold_fabric, cold_fm)
    );
    assert_eq!(
        link_set(&warm_fabric, warm_fm),
        link_set(&cold_fabric, cold_fm)
    );
}

#[test]
fn foreign_snapshot_is_rejected_and_discovery_runs_cold() {
    let g = mesh(3, 3);
    let topo = &g.topology;
    // A snapshot rooted at a host this manager is not.
    let snapshot = Snapshot::new(0xDEAD_BEEF);
    let cfg = FmConfig::new(Algorithm::Parallel).with_warm_start(snapshot);
    let (fabric, fm) = run_fm(bring_up(topo, None), topo, cfg);
    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    let run = agent.last_run().unwrap();
    assert_eq!(run.trigger, DiscoveryTrigger::Initial, "must run cold");
    assert_eq!(run.probes_verified, 0);
    assert_eq!(agent.db().unwrap().device_count(), 18);
}

#[test]
fn warm_start_converges_under_loss() {
    // Lossy fabric: verification probes can vanish; with a retry budget
    // the warm run must still end at the full 18-device database, via
    // retries or via scoped re-discovery of falsely-mismatched devices.
    let g = mesh(3, 3);
    let topo = &g.topology;
    let (full_fabric, full_fm) = run_fm(
        bring_up(topo, None),
        topo,
        FmConfig::new(Algorithm::Parallel),
    );
    let snapshot = snapshot_of(&full_fabric, full_fm);
    let truth_devices = device_set(&full_fabric, full_fm);
    let truth_links = link_set(&full_fabric, full_fm);

    for seed in 1..=5u64 {
        let config = FabricConfig {
            faults: FaultPlan::none().with_loss(LossModel::uniform(0.05)),
            seed,
            ..FabricConfig::default()
        };
        let mut fabric = Fabric::new(topo, config);
        fabric.set_event_limit(50_000_000);
        fabric.activate_all(SimDuration::ZERO);
        fabric.run_until_idle();
        let fm = DevId(asi_topo::default_fm_endpoint(topo).unwrap().0);
        let cfg = FmConfig::new(Algorithm::Parallel)
            .with_warm_start(snapshot.clone())
            .with_warm_fallback_threshold(1.0)
            .with_retry(RetryPolicy::fixed(8))
            .with_request_timeout(SimDuration::from_us(500));
        fabric.set_agent(fm, Box::new(FmAgent::new(cfg)));
        fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
        fabric.run_until_idle();

        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        let run = agent.last_run().expect("run terminates under loss");
        assert_eq!(run.trigger, DiscoveryTrigger::WarmStart, "seed {seed}");
        assert_eq!(device_set(&fabric, fm), truth_devices, "seed {seed}");
        assert_eq!(link_set(&fabric, fm), truth_links, "seed {seed}");
        for d in agent.db().unwrap().devices() {
            assert!(d.ports_complete(), "seed {seed}: {:x}", d.info.dsn);
        }
    }
}

#[test]
fn warm_start_then_partial_assimilation_of_a_change() {
    // A warm-started manager must still assimilate later PI-5 changes;
    // with partial assimilation on, the change run is the scoped kind.
    let g = mesh(3, 3);
    let topo = &g.topology;
    let (full_fabric, full_fm) = run_fm(
        bring_up(topo, None),
        topo,
        FmConfig::new(Algorithm::Parallel),
    );
    let snapshot = snapshot_of(&full_fabric, full_fm);

    let mut fabric = bring_up(topo, None);
    let fm = DevId(asi_topo::default_fm_endpoint(topo).unwrap().0);
    let cfg = FmConfig::new(Algorithm::Parallel)
        .with_warm_start(snapshot)
        .with_warm_fallback_threshold(1.0)
        .with_partial_assimilation(true);
    fabric.set_agent(fm, Box::new(FmAgent::new(cfg)));
    fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    fabric.run_until_idle();

    // Install PI-5 reporting routes from the warm-started database.
    let routes: Vec<(u64, asi_core::DeviceRoute)> = {
        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        let db = agent.db().expect("warm run finished");
        assert_eq!(db.device_count(), 18, "warm start incomplete");
        db.devices()
            .filter(|d| d.info.dsn != db.host_dsn())
            .filter_map(|d| {
                db.route_between(d.info.dsn, db.host_dsn(), asi_proto::MAX_POOL_BITS)
                    .and_then(Result::ok)
                    .map(|r| (d.info.dsn, r))
            })
            .collect()
    };
    for (dsn, r) in routes {
        fabric.set_fm_route(
            DevId((dsn & 0xFFFF_FFFF) as u32),
            FmRoute {
                egress: r.egress,
                pool: r.pool,
            },
        );
    }
    let victim = DevId(g.switch_at(1, 1).0);
    fabric.schedule_deactivate(victim, SimDuration::from_us(50));
    fabric.run_until_idle();

    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    assert!(agent.pi5_events > 0, "no PI-5 reached the FM");
    assert!(agent.runs().len() >= 2, "change was not assimilated");
    assert_eq!(agent.runs()[0].trigger, DiscoveryTrigger::WarmStart);
    assert_eq!(
        agent.last_run().unwrap().trigger,
        DiscoveryTrigger::Partial,
        "assimilation should be the partial kind"
    );
    let expected: BTreeSet<u64> = fabric
        .active_reachable(fm)
        .into_iter()
        .map(|d| DSN_BASE | u64::from(d.0))
        .collect();
    assert_eq!(device_set(&fabric, fm), expected);
    assert_eq!(agent.db().unwrap().device_count(), 16);
}
