//! Multicast end to end: the FM discovers the fabric, computes a
//! distribution tree for a group, writes the switch multicast tables and
//! member flags over PI-4, and a member's single injected packet is then
//! replicated by the fabric to every other member exactly once.

use asi_core::{Algorithm, FmAgent, FmConfig, TOKEN_CONFIGURE_MCAST, TOKEN_START_DISCOVERY};
use asi_fabric::{AgentCtx, DevId, Fabric, FabricAgent, FabricConfig, DSN_BASE};
use asi_proto::{Packet, Payload, ProtocolInterface, RouteHeader, TurnPool};
use asi_sim::{SimDuration, SimTime};
use asi_topo::{mesh, NodeId};
use std::any::Any;

/// Counts multicast deliveries; can inject one multicast packet.
#[derive(Default)]
struct Member {
    received: Vec<(SimTime, u16)>,
    inject: Option<u16>,
}

impl FabricAgent for Member {
    fn processing_time(&mut self, _p: &Packet) -> SimDuration {
        SimDuration::from_ns(100)
    }
    fn on_packet(&mut self, ctx: &mut AgentCtx, packet: Packet) {
        if let Payload::Mcast { group, .. } = packet.payload {
            self.received.push((ctx.now, group));
        }
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx, _token: u64) {
        if let Some(group) = self.inject.take() {
            let header =
                RouteHeader::forward(ProtocolInterface::Multicast, 0, TurnPool::new_spec());
            ctx.send(
                0,
                Packet::new(
                    header,
                    Payload::Mcast {
                        group,
                        len: 200,
                        hops: 32,
                    },
                ),
            );
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn dev(n: NodeId) -> DevId {
    DevId(n.0)
}

#[test]
fn multicast_group_configuration_and_delivery() {
    const GROUP: u16 = 7;
    let g = mesh(4, 4);
    let mut fabric = Fabric::new(&g.topology, FabricConfig::default());
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();

    // Discovery first.
    let fm = dev(g.endpoint_at(0, 0));
    fabric.set_agent(
        fm,
        Box::new(FmAgent::new(FmConfig::new(Algorithm::Parallel))),
    );
    fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    fabric.run_until_idle();

    // Group members: three endpoints spread across the mesh.
    let members = [
        g.endpoint_at(1, 0),
        g.endpoint_at(3, 1),
        g.endpoint_at(0, 3),
    ];
    let member_dsns: Vec<u64> = members.iter().map(|m| DSN_BASE | u64::from(m.0)).collect();
    {
        let agent = fabric.agent_as_mut::<FmAgent>(fm).unwrap();
        agent.queue_multicast(GROUP, member_dsns.clone());
    }
    fabric.schedule_agent_timer(fm, SimDuration::from_us(1), TOKEN_CONFIGURE_MCAST);
    fabric.run_until_idle();
    {
        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        assert!(agent.mcast_settled(), "table writes did not drain");
        assert_eq!(agent.mcast_failures, 0);
        assert_eq!(agent.mcast_configured, vec![GROUP]);
    }

    // Membership flags are in the endpoints' config spaces.
    for &m in &members {
        assert_eq!(fabric.config_space(dev(m)).mcast_entry(GROUP), 1);
    }
    // A non-member stays unflagged.
    assert_eq!(
        fabric
            .config_space(dev(g.endpoint_at(2, 2)))
            .mcast_entry(GROUP),
        0
    );

    // Install member agents; the first member injects one packet.
    for (i, &m) in members.iter().enumerate() {
        let mut agent = Member::default();
        if i == 0 {
            agent.inject = Some(GROUP);
        }
        fabric.set_agent(dev(m), Box::new(agent));
    }
    // Non-member observer: must receive nothing.
    fabric.set_agent(dev(g.endpoint_at(2, 2)), Box::new(Member::default()));

    fabric.schedule_agent_timer(dev(members[0]), SimDuration::from_us(1), 0);
    fabric.run_until_idle();

    // Every *other* member got exactly one copy.
    for &m in &members[1..] {
        let agent = fabric.agent_as::<Member>(dev(m)).unwrap();
        assert_eq!(
            agent.received.len(),
            1,
            "member at {m} got {} copies",
            agent.received.len()
        );
        assert_eq!(agent.received[0].1, GROUP);
    }
    // The source did not hear its own packet (no reflection), and the
    // observer heard nothing.
    assert!(fabric
        .agent_as::<Member>(dev(members[0]))
        .unwrap()
        .received
        .is_empty());
    assert!(fabric
        .agent_as::<Member>(dev(g.endpoint_at(2, 2)))
        .unwrap()
        .received
        .is_empty());
    // The loop guard never tripped.
    assert_eq!(fabric.counters().dropped_bad_route, 0);
}

#[test]
fn any_member_can_be_the_source() {
    const GROUP: u16 = 3;
    let g = mesh(3, 3);
    let mut fabric = Fabric::new(&g.topology, FabricConfig::default());
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();

    let fm = dev(g.endpoint_at(0, 0));
    fabric.set_agent(
        fm,
        Box::new(FmAgent::new(FmConfig::new(Algorithm::Parallel))),
    );
    fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    fabric.run_until_idle();

    let members = [
        g.endpoint_at(2, 0),
        g.endpoint_at(0, 2),
        g.endpoint_at(2, 2),
    ];
    let member_dsns: Vec<u64> = members.iter().map(|m| DSN_BASE | u64::from(m.0)).collect();
    fabric
        .agent_as_mut::<FmAgent>(fm)
        .unwrap()
        .queue_multicast(GROUP, member_dsns);
    fabric.schedule_agent_timer(fm, SimDuration::from_us(1), TOKEN_CONFIGURE_MCAST);
    fabric.run_until_idle();

    // Each member takes a turn as the source; the other two always
    // receive exactly one copy.
    for source in 0..members.len() {
        for (i, &m) in members.iter().enumerate() {
            let mut agent = Member::default();
            if i == source {
                agent.inject = Some(GROUP);
            }
            fabric.set_agent(dev(m), Box::new(agent));
        }
        fabric.schedule_agent_timer(dev(members[source]), SimDuration::from_us(1), 0);
        fabric.run_until_idle();
        for (i, &m) in members.iter().enumerate() {
            let got = fabric.agent_as::<Member>(dev(m)).unwrap().received.len();
            if i == source {
                assert_eq!(got, 0, "source {source} echoed to itself");
            } else {
                assert_eq!(got, 1, "source {source} → member {i}: {got} copies");
            }
        }
    }
}
