//! Path distribution end to end: after discovery, the FM writes per-
//! endpoint route tables through PI-4; the distributed routes must be
//! present in the endpoints' configuration spaces and actually deliver
//! packets across the fabric.

use asi_core::{decode_route_table, Algorithm, FmAgent, FmConfig, TOKEN_START_DISCOVERY};
use asi_fabric::{AgentCtx, DevId, Fabric, FabricAgent, FabricConfig, DSN_BASE};
use asi_proto::{CapabilityAddr, Packet, Payload, ProtocolInterface, RouteHeader, CAP_ROUTE_TABLE};
use asi_sim::{SimDuration, SimTime};
use asi_topo::mesh;
use std::any::Any;

fn setup(distribute: bool) -> (Fabric, DevId) {
    let g = mesh(3, 3);
    let mut fabric = Fabric::new(&g.topology, FabricConfig::default());
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();
    let fm = DevId(g.endpoint_at(0, 0).0);
    let mut cfg = FmConfig::new(Algorithm::Parallel);
    cfg.distribute_paths = distribute;
    fabric.set_agent(fm, Box::new(FmAgent::new(cfg)));
    fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    fabric.run_until_idle();
    (fabric, fm)
}

#[test]
fn distribution_phase_writes_every_endpoint_table() {
    let (fabric, fm) = setup(true);
    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    assert_eq!(agent.distributions.len(), 1, "one distribution phase");
    let dist = &agent.distributions[0];
    // 8 non-host endpoints × 8 destinations each = 64 writes.
    assert_eq!(dist.writes, 64);
    assert_eq!(dist.failures, 0);
    assert_eq!(dist.unencodable, 0);
    assert!(dist.distribution_time() > SimDuration::ZERO);
    assert!(
        dist.distribution_time() < SimDuration::from_ms(10),
        "distribution too slow: {}",
        dist.distribution_time()
    );

    // Every endpoint's route table now holds 8 decodable entries whose
    // pools match the FM's database routes.
    let db = agent.db().unwrap();
    for ep_dsn in db.endpoints() {
        if ep_dsn == db.host_dsn() {
            continue;
        }
        let cs = fabric.config_space(DevId((ep_dsn & 0xFFFF_FFFF) as u32));
        let mut words = Vec::new();
        let mut offset = 0u16;
        // 8 entries × 6 words = 48 words, read 8 at a time.
        while words.len() < 48 {
            let chunk = cs
                .read(
                    CapabilityAddr {
                        capability: CAP_ROUTE_TABLE,
                        offset,
                    },
                    8,
                )
                .expect("route table readable");
            words.extend(chunk);
            offset += 8;
        }
        let entries = decode_route_table(&words);
        assert_eq!(entries.len(), 8, "endpoint {ep_dsn:x}");
        for e in &entries {
            let expected = db.route_between(ep_dsn, e.dest_dsn, 96).unwrap().unwrap();
            assert_eq!(e.pool, expected.pool, "{ep_dsn:x} -> {:x}", e.dest_dsn);
            assert_eq!(e.egress, expected.egress);
        }
    }
}

#[test]
fn no_distribution_without_the_flag() {
    let (fabric, fm) = setup(false);
    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    assert!(agent.distributions.is_empty());
    // Tables remain zeroed.
    let cs = fabric.config_space(DevId(3));
    let words = cs
        .read(
            CapabilityAddr {
                capability: CAP_ROUTE_TABLE,
                offset: 0,
            },
            6,
        )
        .unwrap();
    assert!(words.iter().all(|&w| w == 0));
}

/// A probe agent that sends one data packet using a distributed route
/// table entry and counts what it receives.
#[derive(Default)]
struct TableUser {
    received: Vec<(SimTime, Packet)>,
    to_send: Option<(u8, Packet)>,
}

impl FabricAgent for TableUser {
    fn processing_time(&mut self, _p: &Packet) -> SimDuration {
        SimDuration::from_ns(100)
    }
    fn on_packet(&mut self, ctx: &mut AgentCtx, packet: Packet) {
        self.received.push((ctx.now, packet));
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx, _token: u64) {
        if let Some((port, pkt)) = self.to_send.take() {
            ctx.send(port, pkt);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn distributed_routes_actually_deliver_packets() {
    let (mut fabric, fm) = setup(true);

    // Pick endpoint (2,2): read its table from its own config space, use
    // the entry for endpoint (0,2)'s DSN, and send a data packet along it.
    let g = mesh(3, 3);
    let src = DevId(g.endpoint_at(2, 2).0);
    let dst = DevId(g.endpoint_at(0, 2).0);
    let dst_dsn = DSN_BASE | u64::from(dst.0);

    let entry = {
        let cs = fabric.config_space(src);
        let mut words = Vec::new();
        let mut offset = 0u16;
        while words.len() < 48 {
            words.extend(
                cs.read(
                    CapabilityAddr {
                        capability: CAP_ROUTE_TABLE,
                        offset,
                    },
                    8,
                )
                .unwrap(),
            );
            offset += 8;
        }
        decode_route_table(&words)
            .into_iter()
            .find(|e| e.dest_dsn == dst_dsn)
            .expect("route to destination present")
    };

    let header = RouteHeader::forward(ProtocolInterface::Data, 0, entry.pool.clone());
    let packet = Packet::new(header, Payload::Data { len: 128 });
    let sender = TableUser {
        to_send: Some((entry.egress, packet)),
        ..Default::default()
    };
    fabric.set_agent(src, Box::new(sender));
    fabric.set_agent(dst, Box::new(TableUser::default()));
    fabric.schedule_agent_timer(src, SimDuration::ZERO, 1);
    fabric.run_until_idle();

    let receiver = fabric.agent_as::<TableUser>(dst).unwrap();
    assert_eq!(receiver.received.len(), 1, "packet did not arrive");
    assert!(matches!(
        receiver.received[0].1.payload,
        Payload::Data { len: 128 }
    ));
    let _ = fm;
}
