//! Packet-level FM election: two contenders walk the fabric writing
//! claim-and-hold ownership registers; each observes the other through
//! claim read-backs, and the election rule (`role_of`) picks the primary
//! deterministically.

use asi_core::{role_of, Claim, DistributedRole, FmAgent, FmConfig, FmRole};
use asi_core::{Algorithm, TOKEN_START_DISCOVERY};
use asi_fabric::{DevId, Fabric, FabricConfig, DSN_BASE};
use asi_sim::SimDuration;
use asi_topo::mesh;

#[test]
fn contenders_observe_each_other_and_elect_by_dsn() {
    let g = mesh(4, 4);
    let topo = &g.topology;
    let mut fabric = Fabric::new(topo, FabricConfig::default());
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();

    // Contenders at opposite corners; both run claim-partitioned
    // discovery simultaneously. (`Primary { expected_reports: 0 }` makes
    // them independent walkers — no merge traffic.)
    let a = DevId(g.endpoint_at(0, 0).0);
    let b = DevId(g.endpoint_at(3, 3).0);
    for dev in [a, b] {
        let mut cfg =
            FmConfig::new(Algorithm::Parallel).with_distributed(DistributedRole::Primary {
                expected_reports: 0,
            });
        cfg.auto_rediscover = false;
        fabric.set_agent(dev, Box::new(FmAgent::new(cfg)));
        fabric.schedule_agent_timer(dev, SimDuration::from_us(1), TOKEN_START_DISCOVERY);
    }
    fabric.run_until_idle();

    let dsn_a = DSN_BASE | u64::from(a.0);
    let dsn_b = DSN_BASE | u64::from(b.0);
    let rivals_a: Vec<u64> = fabric
        .agent_as::<FmAgent>(a)
        .unwrap()
        .rivals
        .iter()
        .copied()
        .collect();
    let rivals_b: Vec<u64> = fabric
        .agent_as::<FmAgent>(b)
        .unwrap()
        .rivals
        .iter()
        .copied()
        .collect();
    // Simultaneous walkers must collide somewhere in the middle.
    assert_eq!(rivals_a, vec![dsn_b], "A never saw B");
    assert_eq!(rivals_b, vec![dsn_a], "B never saw A");

    // Election: equal priority, higher DSN wins (b here).
    let claim = |dsn: u64| Claim::new(0, dsn);
    let observed_a: Vec<Claim> = rivals_a.iter().map(|&d| claim(d)).collect();
    let observed_b: Vec<Claim> = rivals_b.iter().map(|&d| claim(d)).collect();
    assert_eq!(role_of(claim(dsn_a), &observed_a), FmRole::Secondary);
    assert_eq!(role_of(claim(dsn_b), &observed_b), FmRole::Primary);
}

#[test]
fn lone_contender_becomes_primary_without_rivals() {
    let g = mesh(3, 3);
    let mut fabric = Fabric::new(&g.topology, FabricConfig::default());
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();
    let a = DevId(g.endpoint_at(0, 0).0);
    let mut cfg = FmConfig::new(Algorithm::Parallel).with_distributed(DistributedRole::Primary {
        expected_reports: 0,
    });
    cfg.auto_rediscover = false;
    fabric.set_agent(a, Box::new(FmAgent::new(cfg)));
    fabric.schedule_agent_timer(a, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    fabric.run_until_idle();

    let agent = fabric.agent_as::<FmAgent>(a).unwrap();
    assert!(agent.rivals.is_empty());
    let dsn_a = DSN_BASE | u64::from(a.0);
    assert_eq!(role_of(Claim::new(0, dsn_a), &[]), FmRole::Primary);
    // The claim walk still discovered the whole fabric.
    assert_eq!(agent.db().unwrap().device_count(), 18);
}
