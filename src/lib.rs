//! # advanced-switching
//!
//! A full reproduction of *"Implementing the Advanced Switching Fabric
//! Discovery Process"* (Robles-Gómez, Bermúdez, Casado, Quiles — IPPS
//! 2007 / TR DIAB-06-09-2): an Advanced Switching Interconnect (ASI)
//! fabric simulator plus the fabric-manager topology-discovery
//! implementations the paper compares.
//!
//! ## Layout
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | deterministic discrete-event kernel (time, events, RNG, stats) |
//! | [`proto`] | ASI wire formats: turn-pool source routing, route header, PI-4/PI-5, config space, VCs |
//! | [`topo`] | topology generators (meshes, tori, *m*-port *n*-trees, irregular) and ground-truth paths |
//! | [`fabric`] | the packet-level fabric: cut-through switches, credit flow control, device responders, PI-5, hot add/remove |
//! | [`core`] | **the paper's contribution**: the fabric manager with Serial Packet / Serial Device / Parallel discovery, change assimilation, election |
//! | [`state`] | versioned topology snapshots (binary + JSONL), structural diffing, warm-start seeds |
//! | [`harness`] | scenario runner + regenerators for every table and figure |
//!
//! ## Quickstart
//!
//! ```
//! use advanced_switching::prelude::*;
//!
//! // Build the paper's 3x3 mesh, bring it up, discover it.
//! let grid = mesh(3, 3);
//! let bench = Bench::start(&grid.topology, &Scenario::new(Algorithm::Parallel), &[]);
//! let run = bench.last_run();
//! assert_eq!(run.devices_found, 18);
//! println!("discovered 18 devices in {}", run.discovery_time());
//! ```

pub use asi_core as core;
pub use asi_fabric as fabric;
pub use asi_harness as harness;
pub use asi_proto as proto;
pub use asi_sim as sim;
pub use asi_state as state;
pub use asi_topo as topo;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use asi_core::{db_from_snapshot, snapshot_db};
    pub use asi_core::{
        Algorithm, DiscoveryRun, DiscoveryTrigger, Engine, EngineConfig, FmAgent, FmConfig,
        FmTiming, RetryPolicy, TopologyDb, TOKEN_START_DISCOVERY,
    };
    pub use asi_fabric::{
        AgentCtx, DevId, Fabric, FabricAgent, FabricConfig, FaultPlan, FmRoute, LossModel,
        TrafficAgent,
    };
    pub use asi_harness::{
        change_experiment, load_snapshot, save_snapshot, Bench, Scenario, SnapshotFormat,
        TrafficSpec,
    };
    pub use asi_proto::{
        DeviceInfo, DeviceType, Packet, Payload, Pi4, Pi5, PortEvent, PortInfo, PortState, TurnPool,
    };
    pub use asi_sim::{SimDuration, SimRng, SimTime, Simulator};
    pub use asi_state::{Snapshot, TopologyDelta};
    pub use asi_topo::{fat_tree, mesh, torus, NodeId, Table1, Topology};
}
