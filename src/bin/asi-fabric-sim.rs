//! `asi-fabric-sim` — command-line scenario runner.
//!
//! Runs a discovery scenario on a chosen topology and prints the
//! measurements as text or JSON, so the simulator is usable without
//! writing Rust:
//!
//! ```text
//! asi-fabric-sim --topology mesh:6x6 --algorithm parallel
//! asi-fabric-sim --topology torus:8x8 --algorithm all --change remove --json
//! asi-fabric-sim --topology fattree:4,3 --fm-factor 4 --device-factor 0.2
//! asi-fabric-sim --topology irregular:20 --seed 7 --loss 0.02 --retries 4
//! asi-fabric-sim sweep --grid fig6 --quick --jobs 4 --json
//! ```
//!
//! Every malformed flag produces a one-line `error: ...` on stderr plus
//! the usage text and exit code 2 — never a panic.

use advanced_switching::core::Algorithm;
use advanced_switching::harness::{
    change_experiment, lossy_initial_discovery, save_trace_jsonl, sweep, Bench, Json,
    RingCollector, Scenario, SweepSpec,
};
use advanced_switching::sim::{SimRng, TraceHandle};
use advanced_switching::topo::{fat_tree, irregular, mesh, torus, IrregularSpec, Topology};
use std::fmt;

struct RunReport {
    topology: String,
    devices: usize,
    algorithm: String,
    scenario: String,
    discovery_time_s: f64,
    devices_found: usize,
    links_found: usize,
    requests: u64,
    responses: u64,
    timeouts: u64,
    bytes_sent: u64,
    bytes_received: u64,
    mean_fm_processing_us: f64,
    fm_utilization: f64,
}

impl RunReport {
    fn to_json(&self) -> Json {
        Json::object()
            .with("topology", self.topology.as_str())
            .with("devices", self.devices)
            .with("algorithm", self.algorithm.as_str())
            .with("scenario", self.scenario.as_str())
            .with("discovery_time_s", self.discovery_time_s)
            .with("devices_found", self.devices_found)
            .with("links_found", self.links_found)
            .with("requests", self.requests)
            .with("responses", self.responses)
            .with("timeouts", self.timeouts)
            .with("bytes_sent", self.bytes_sent)
            .with("bytes_received", self.bytes_received)
            .with("mean_fm_processing_us", self.mean_fm_processing_us)
            .with("fm_utilization", self.fm_utilization)
    }
}

const USAGE: &str = "usage: asi-fabric-sim --topology <spec> [options]
       asi-fabric-sim sweep [sweep options]

topology specs:
  mesh:<W>x<H>        2-D mesh of 16-port switches, one endpoint each (2..=64 per side)
  torus:<W>x<H>       2-D torus (2..=64 per side)
  fattree:<m>,<n>     m-port n-tree (m even, 2..=256; n 1..=8)
  irregular:<N>       random connected fabric with N switches (1..=1024)

options:
  --algorithm serial-packet|serial-device|parallel|all   (default: all)
  --change none|remove|add     measure initial discovery or a change (default: none)
  --fm-factor <f>              FM processing speed factor (default 1)
  --device-factor <f>          device processing speed factor (default 1)
  --loss <p>                   per-hop packet loss probability in [0,1) (default 0)
  --retries <n>                FM request retries under loss (default 0; use >0 with --loss)
  --seed <n>                   RNG seed (default 0xA51)
  --trace <path>               write a JSONL discovery trace (see docs/TRACE_FORMAT.md)
  --json                       emit JSON instead of a table

sweep options (deterministic multi-threaded grid; output is byte-identical
for any --jobs value):
  --grid fig5|fig6|smoke       named grid (default: smoke)
  --quick                      smaller topology set / fewer repetitions
  --jobs <n>                   worker threads (default: all cores)
  --fm-factor <f>              FM processing speed factor (default 1)
  --device-factor <f>          device processing speed factor (default 1)
  --loss <p>                   per-hop loss probability in [0,1) (default 0)
  --retries <n>                FM request retries under loss (default 0)
  --json | --csv               machine-readable output (default: text table)";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2)
}

/// Friendly fatal error: one line on stderr, then the usage text, exit 2.
fn fail(msg: impl fmt::Display) -> ! {
    eprintln!("error: {msg}");
    eprintln!();
    eprintln!("{USAGE}");
    std::process::exit(2)
}

fn parse_topology(spec: &str, seed: u64) -> Result<Topology, String> {
    let Some((kind, rest)) = spec.split_once(':') else {
        return Err(format!(
            "topology {spec:?} is missing its parameters (e.g. mesh:3x3)"
        ));
    };
    match kind {
        "mesh" | "torus" => {
            let Some((w, h)) = rest.split_once('x') else {
                return Err(format!("{kind} wants WxH dimensions, got {rest:?}"));
            };
            let (w, h): (usize, usize) = match (w.parse(), h.parse()) {
                (Ok(w), Ok(h)) => (w, h),
                _ => return Err(format!("{kind} dimensions must be integers, got {rest:?}")),
            };
            if !(2..=64).contains(&w) || !(2..=64).contains(&h) {
                return Err(format!(
                    "{kind} sides must be between 2 and 64, got {w}x{h}"
                ));
            }
            Ok(if kind == "mesh" {
                mesh(w, h).topology
            } else {
                torus(w, h).topology
            })
        }
        "fattree" => {
            let Some((m, n)) = rest.split_once(',') else {
                return Err(format!("fattree wants m,n parameters, got {rest:?}"));
            };
            let (m, n): (u32, u32) = match (m.parse(), n.parse()) {
                (Ok(m), Ok(n)) => (m, n),
                _ => return Err(format!("fattree parameters must be integers, got {rest:?}")),
            };
            if !(2..=256).contains(&m) || !m.is_multiple_of(2) {
                return Err(format!("fattree port count must be even and in 2..=256, got {m}"));
            }
            if !(1..=8).contains(&n) {
                return Err(format!("fattree levels must be in 1..=8, got {n}"));
            }
            Ok(fat_tree(m, n).topology)
        }
        "irregular" => {
            let switches: usize = rest
                .parse()
                .map_err(|_| format!("irregular wants a switch count, got {rest:?}"))?;
            if !(1..=1024).contains(&switches) {
                return Err(format!(
                    "irregular switch count must be in 1..=1024, got {switches}"
                ));
            }
            let mut rng = SimRng::new(seed);
            Ok(irregular(
                IrregularSpec {
                    switches,
                    extra_links: switches / 2,
                    endpoints_per_switch: 1,
                },
                &mut rng,
            ))
        }
        other => Err(format!(
            "unknown topology kind {other:?} (mesh, torus, fattree, irregular)"
        )),
    }
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses `--name <value>` with a friendly error instead of a panic.
fn parse_arg<T: std::str::FromStr>(args: &[String], name: &str, default: T, what: &str) -> T {
    match arg_value(args, name) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| fail(format!("{name} must be {what}, got {v:?}"))),
    }
}

fn parse_loss(args: &[String]) -> f64 {
    let loss: f64 = parse_arg(args, "--loss", 0.0, "a probability");
    if !(0.0..1.0).contains(&loss) {
        fail(format!("--loss must be in [0, 1), got {loss}"));
    }
    loss
}

fn parse_algorithms(args: &[String]) -> Vec<Algorithm> {
    match arg_value(args, "--algorithm").as_deref() {
        Some("serial-packet") => vec![Algorithm::SerialPacket],
        Some("serial-device") => vec![Algorithm::SerialDevice],
        Some("parallel") => vec![Algorithm::Parallel],
        Some("all") | None => Algorithm::all().to_vec(),
        Some(other) => fail(format!(
            "unknown algorithm {other:?} (serial-packet, serial-device, parallel, all)"
        )),
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `asi-fabric-sim sweep ...`: run a named deterministic grid.
fn sweep_main(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let fm_factor: f64 = parse_arg(args, "--fm-factor", 1.0, "a number");
    let device_factor: f64 = parse_arg(args, "--device-factor", 1.0, "a number");
    let mut spec = match arg_value(args, "--grid").as_deref() {
        Some("fig5") => SweepSpec::fig5(quick),
        Some("fig6") => SweepSpec::fig6(quick, fm_factor, device_factor),
        Some("smoke") | None => SweepSpec::smoke(),
        Some(other) => fail(format!("unknown grid {other:?} (fig5, fig6, smoke)")),
    };
    spec.fm_factor = fm_factor;
    spec.device_factor = device_factor;
    spec.loss_rate = parse_loss(args);
    spec.max_retries = parse_arg(args, "--retries", 0, "an integer");
    let jobs: usize = parse_arg(args, "--jobs", default_jobs(), "an integer");
    if jobs == 0 {
        fail("--jobs must be at least 1");
    }
    let result = sweep::run(&spec, jobs);
    if args.iter().any(|a| a == "--json") {
        println!("{}", result.to_json().to_string_pretty());
    } else if args.iter().any(|a| a == "--csv") {
        print!("{}", result.to_csv());
    } else {
        print!("{}", result.to_text());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    if args[0] == "sweep" {
        sweep_main(&args[1..]);
        return;
    }
    let seed: u64 = parse_arg(&args, "--seed", 0xA51, "an integer");
    let Some(topo_spec) = arg_value(&args, "--topology") else {
        fail("--topology is required (e.g. --topology mesh:3x3)");
    };
    let topo = parse_topology(&topo_spec, seed).unwrap_or_else(|e| fail(e));
    let fm_factor: f64 = parse_arg(&args, "--fm-factor", 1.0, "a number");
    let device_factor: f64 = parse_arg(&args, "--device-factor", 1.0, "a number");
    let loss = parse_loss(&args);
    let retries: u32 = parse_arg(&args, "--retries", 0, "an integer");
    let change = arg_value(&args, "--change").unwrap_or_else(|| "none".into());
    let json = args.iter().any(|a| a == "--json");
    let algorithms = parse_algorithms(&args);

    // One collector for the whole invocation: per-algorithm runs are
    // delimited by their run-started/run-finished records.
    let trace_path = arg_value(&args, "--trace");
    let collector = trace_path.as_ref().map(|_| RingCollector::shared(1 << 20));
    let trace = collector
        .as_ref()
        .map(|c| TraceHandle::to(c.clone()))
        .unwrap_or_default();

    let mut reports = Vec::new();
    for algorithm in algorithms {
        let scenario = Scenario::new(algorithm)
            .with_factors(fm_factor, device_factor)
            .with_seed(seed)
            .with_trace(trace.clone());
        let run = match change.as_str() {
            "none" if loss == 0.0 => Bench::start(&topo, &scenario, &[]).last_run(),
            "none" => {
                // Lossy initial discovery: the loss rate and retry budget
                // apply (shared helper with the sweep runner).
                match lossy_initial_discovery(&topo, &scenario, loss, retries) {
                    Some((run, _active)) => run,
                    None => fail(format!(
                        "discovery did not complete under loss {loss} with {retries} \
                         retries (give the FM a larger --retries budget)"
                    )),
                }
            }
            "remove" | "add" => change_experiment(&topo, &scenario, change == "remove").0,
            other => fail(format!("unknown change {other:?} (none, remove, add)")),
        };
        reports.push(RunReport {
            topology: topo.name.clone(),
            devices: topo.node_count(),
            algorithm: algorithm.name().to_string(),
            scenario: change.clone(),
            discovery_time_s: run.discovery_time().as_secs_f64(),
            devices_found: run.devices_found,
            links_found: run.links_found,
            requests: run.requests_sent,
            responses: run.responses_received,
            timeouts: run.timeouts,
            bytes_sent: run.bytes_sent,
            bytes_received: run.bytes_received,
            mean_fm_processing_us: run.mean_fm_processing().as_micros_f64(),
            fm_utilization: run.fm_utilization(),
        });
    }

    if let (Some(path), Some(collector)) = (&trace_path, &collector) {
        let collector = collector.borrow();
        let path = std::path::Path::new(path);
        save_trace_jsonl(path, collector.records()).unwrap_or_else(|e| {
            eprintln!("cannot write trace to {}: {e}", path.display());
            std::process::exit(1);
        });
        eprintln!(
            "trace: {} records written to {}{}",
            collector.len(),
            path.display(),
            if collector.dropped() > 0 {
                format!(" ({} oldest dropped by the ring buffer)", collector.dropped())
            } else {
                String::new()
            }
        );
    }

    if json {
        let arr = Json::Arr(reports.iter().map(RunReport::to_json).collect());
        println!("{}", arr.to_string_pretty());
    } else {
        println!(
            "{:<16} {:>14} {:>9} {:>9} {:>9} {:>12} {:>8}",
            "algorithm", "discovery", "devices", "links", "requests", "FM us/pkt", "FM util"
        );
        for r in &reports {
            println!(
                "{:<16} {:>12.3}ms {:>9} {:>9} {:>9} {:>12.2} {:>7.0}%",
                r.algorithm,
                r.discovery_time_s * 1e3,
                r.devices_found,
                r.links_found,
                r.requests,
                r.mean_fm_processing_us,
                r.fm_utilization * 100.0
            );
        }
    }
}
