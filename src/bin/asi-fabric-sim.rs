//! `asi-fabric-sim` — command-line scenario runner.
//!
//! Runs a discovery scenario on a chosen topology and prints the
//! measurements as text or JSON, so the simulator is usable without
//! writing Rust:
//!
//! ```text
//! asi-fabric-sim --topology mesh:6x6 --algorithm parallel
//! asi-fabric-sim --topology torus:8x8 --algorithm all --change remove --json
//! asi-fabric-sim --topology fattree:4,3 --fm-factor 4 --device-factor 0.2
//! asi-fabric-sim --topology irregular:20 --seed 7 --loss 0.02 --retries 4
//! ```

use advanced_switching::core::{Algorithm, FmAgent, FmConfig, FmTiming, TOKEN_START_DISCOVERY};
use advanced_switching::fabric::{DevId, Fabric, FabricConfig};
use advanced_switching::harness::{
    change_experiment, save_trace_jsonl, Bench, Json, RingCollector, Scenario,
};
use advanced_switching::sim::{SimDuration, SimRng, TraceHandle};
use advanced_switching::topo::{fat_tree, irregular, mesh, torus, IrregularSpec, Topology};

struct RunReport {
    topology: String,
    devices: usize,
    algorithm: String,
    scenario: String,
    discovery_time_s: f64,
    devices_found: usize,
    links_found: usize,
    requests: u64,
    responses: u64,
    timeouts: u64,
    bytes_sent: u64,
    bytes_received: u64,
    mean_fm_processing_us: f64,
    fm_utilization: f64,
}

impl RunReport {
    fn to_json(&self) -> Json {
        Json::object()
            .with("topology", self.topology.as_str())
            .with("devices", self.devices)
            .with("algorithm", self.algorithm.as_str())
            .with("scenario", self.scenario.as_str())
            .with("discovery_time_s", self.discovery_time_s)
            .with("devices_found", self.devices_found)
            .with("links_found", self.links_found)
            .with("requests", self.requests)
            .with("responses", self.responses)
            .with("timeouts", self.timeouts)
            .with("bytes_sent", self.bytes_sent)
            .with("bytes_received", self.bytes_received)
            .with("mean_fm_processing_us", self.mean_fm_processing_us)
            .with("fm_utilization", self.fm_utilization)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: asi-fabric-sim --topology <spec> [options]

topology specs:
  mesh:<W>x<H>        2-D mesh of 16-port switches, one endpoint each
  torus:<W>x<H>       2-D torus
  fattree:<m>,<n>     m-port n-tree (Lin et al.)
  irregular:<N>       random connected fabric with N switches

options:
  --algorithm serial-packet|serial-device|parallel|all   (default: all)
  --change none|remove|add     measure initial discovery or a change (default: none)
  --fm-factor <f>              FM processing speed factor (default 1)
  --device-factor <f>          device processing speed factor (default 1)
  --loss <p>                   per-hop packet loss probability (default 0)
  --retries <n>                FM request retries under loss (default 0; use >0 with --loss)
  --seed <n>                   RNG seed (default 0xA51)
  --trace <path>               write a JSONL discovery trace (see docs/TRACE_FORMAT.md)
  --json                       emit JSON instead of a table"
    );
    std::process::exit(2)
}

fn parse_topology(spec: &str, seed: u64) -> Option<Topology> {
    let (kind, rest) = spec.split_once(':')?;
    match kind {
        "mesh" | "torus" => {
            let (w, h) = rest.split_once('x')?;
            let (w, h) = (w.parse().ok()?, h.parse().ok()?);
            Some(if kind == "mesh" {
                mesh(w, h).topology
            } else {
                torus(w, h).topology
            })
        }
        "fattree" => {
            let (m, n) = rest.split_once(',')?;
            Some(fat_tree(m.parse().ok()?, n.parse().ok()?).topology)
        }
        "irregular" => {
            let switches = rest.parse().ok()?;
            let mut rng = SimRng::new(seed);
            Some(irregular(
                IrregularSpec {
                    switches,
                    extra_links: switches / 2,
                    endpoints_per_switch: 1,
                },
                &mut rng,
            ))
        }
        _ => None,
    }
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let seed: u64 = arg_value(&args, "--seed")
        .map(|v| v.parse().expect("--seed must be an integer"))
        .unwrap_or(0xA51);
    let topo_spec = arg_value(&args, "--topology").unwrap_or_else(|| usage());
    let topo = parse_topology(&topo_spec, seed).unwrap_or_else(|| usage());
    let fm_factor: f64 = arg_value(&args, "--fm-factor")
        .map(|v| v.parse().expect("--fm-factor must be a number"))
        .unwrap_or(1.0);
    let device_factor: f64 = arg_value(&args, "--device-factor")
        .map(|v| v.parse().expect("--device-factor must be a number"))
        .unwrap_or(1.0);
    let loss: f64 = arg_value(&args, "--loss")
        .map(|v| v.parse().expect("--loss must be a probability"))
        .unwrap_or(0.0);
    let retries: u32 = arg_value(&args, "--retries")
        .map(|v| v.parse().expect("--retries must be an integer"))
        .unwrap_or(0);
    let change = arg_value(&args, "--change").unwrap_or_else(|| "none".into());
    let json = args.iter().any(|a| a == "--json");
    let algorithms: Vec<Algorithm> = match arg_value(&args, "--algorithm").as_deref() {
        Some("serial-packet") => vec![Algorithm::SerialPacket],
        Some("serial-device") => vec![Algorithm::SerialDevice],
        Some("parallel") => vec![Algorithm::Parallel],
        Some("all") | None => Algorithm::all().to_vec(),
        Some(other) => {
            eprintln!("unknown algorithm {other:?}");
            usage()
        }
    };

    // One collector for the whole invocation: per-algorithm runs are
    // delimited by their run-started/run-finished records.
    let trace_path = arg_value(&args, "--trace");
    let collector = trace_path.as_ref().map(|_| RingCollector::shared(1 << 20));
    let trace = collector
        .as_ref()
        .map(|c| TraceHandle::to(c.clone()))
        .unwrap_or_default();

    let mut reports = Vec::new();
    for algorithm in algorithms {
        let run = match change.as_str() {
            "none" if loss == 0.0 => {
                let scenario = Scenario::new(algorithm)
                    .with_factors(fm_factor, device_factor)
                    .with_seed(seed)
                    .with_trace(trace.clone());
                Bench::start(&topo, &scenario, &[]).last_run()
            }
            "none" => {
                // Lossy initial discovery: build the fabric directly so the
                // loss rate and retry budget apply.
                let config = FabricConfig {
                    device_factor,
                    loss_rate: loss,
                    seed,
                    ..FabricConfig::default()
                };
                let mut fabric = Fabric::new(&topo, config);
                fabric.set_event_limit(2_000_000_000);
                fabric.set_trace(trace.clone(), 4096);
                fabric.activate_all(SimDuration::ZERO);
                fabric.run_until_idle();
                let fm_node =
                    advanced_switching::topo::default_fm_endpoint(&topo).expect("endpoint");
                let fm = DevId(fm_node.0);
                let mut cfg = FmConfig::new(algorithm);
                cfg.timing = FmTiming::default().with_factor(fm_factor);
                cfg.max_retries = retries;
                cfg.request_timeout = SimDuration::from_us(800);
                cfg.trace = trace.clone();
                fabric.set_agent(fm, Box::new(FmAgent::new(cfg)));
                fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
                fabric.run_until_idle();
                fabric
                    .agent_as::<FmAgent>(fm)
                    .unwrap()
                    .last_run()
                    .expect("run terminates")
                    .clone()
            }
            "remove" | "add" => {
                let scenario = Scenario::new(algorithm)
                    .with_factors(fm_factor, device_factor)
                    .with_seed(seed)
                    .with_trace(trace.clone());
                change_experiment(&topo, &scenario, change == "remove").0
            }
            other => {
                eprintln!("unknown change {other:?}");
                usage()
            }
        };
        reports.push(RunReport {
            topology: topo.name.clone(),
            devices: topo.node_count(),
            algorithm: algorithm.name().to_string(),
            scenario: change.clone(),
            discovery_time_s: run.discovery_time().as_secs_f64(),
            devices_found: run.devices_found,
            links_found: run.links_found,
            requests: run.requests_sent,
            responses: run.responses_received,
            timeouts: run.timeouts,
            bytes_sent: run.bytes_sent,
            bytes_received: run.bytes_received,
            mean_fm_processing_us: run.mean_fm_processing().as_micros_f64(),
            fm_utilization: run.fm_utilization(),
        });
    }

    if let (Some(path), Some(collector)) = (&trace_path, &collector) {
        let collector = collector.borrow();
        let path = std::path::Path::new(path);
        save_trace_jsonl(path, collector.records()).unwrap_or_else(|e| {
            eprintln!("cannot write trace to {}: {e}", path.display());
            std::process::exit(1);
        });
        eprintln!(
            "trace: {} records written to {}{}",
            collector.len(),
            path.display(),
            if collector.dropped() > 0 {
                format!(" ({} oldest dropped by the ring buffer)", collector.dropped())
            } else {
                String::new()
            }
        );
    }

    if json {
        let arr = Json::Arr(reports.iter().map(RunReport::to_json).collect());
        println!("{}", arr.to_string_pretty());
    } else {
        println!(
            "{:<16} {:>14} {:>9} {:>9} {:>9} {:>12} {:>8}",
            "algorithm", "discovery", "devices", "links", "requests", "FM us/pkt", "FM util"
        );
        for r in &reports {
            println!(
                "{:<16} {:>12.3}ms {:>9} {:>9} {:>9} {:>12.2} {:>7.0}%",
                r.algorithm,
                r.discovery_time_s * 1e3,
                r.devices_found,
                r.links_found,
                r.requests,
                r.mean_fm_processing_us,
                r.fm_utilization * 100.0
            );
        }
    }
}
