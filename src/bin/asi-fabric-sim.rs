//! `asi-fabric-sim` — command-line scenario runner.
//!
//! Runs a discovery scenario on a chosen topology and prints the
//! measurements as text or JSON, so the simulator is usable without
//! writing Rust:
//!
//! ```text
//! asi-fabric-sim --topology mesh:6x6 --algorithm parallel
//! asi-fabric-sim --topology torus:8x8 --algorithm all --change remove --json
//! asi-fabric-sim --topology fattree:4,3 --fm-factor 4 --device-factor 0.2
//! asi-fabric-sim --topology irregular:20 --seed 7 --loss 0.02 --retries 4
//! asi-fabric-sim faults --topology mesh:3x3 --loss 0.05 --loss-model bursty \
//!     --retry-policy exponential --retries 10
//! asi-fabric-sim sweep --grid faults --quick --jobs 4 --json
//! asi-fabric-sim sweep --grid scale --jobs 2 --csv
//! asi-fabric-sim stress --topology mesh:64x64 --algorithm parallel --json
//! asi-fabric-sim snapshot save --topology mesh:3x3 --out fabric.snap
//! asi-fabric-sim snapshot verify --topology mesh:3x3 --in fabric.snap --json
//! ```
//!
//! Every malformed flag produces a one-line `error: ...` on stderr plus
//! the usage text and exit code 2 — never a panic.

use advanced_switching::core::{snapshot_db, Algorithm, RetryPolicy};
use advanced_switching::fabric::{FaultPlan, LossModel};
use advanced_switching::harness::{
    change_experiment, load_snapshot, save_snapshot, save_trace_jsonl, sharded_discovery, sweep,
    Bench, Json, RingCollector, Scenario, SnapshotFormat, SweepSpec,
};
use advanced_switching::sim::{SimDuration, SimRng, TraceHandle};
use advanced_switching::state::{checksum_of, Snapshot, TopologyDelta};
use advanced_switching::topo::{fat_tree, irregular, mesh, torus, IrregularSpec, Topology};
use std::fmt;
use std::path::Path;

struct RunReport {
    topology: String,
    devices: usize,
    algorithm: String,
    scenario: String,
    discovery_time_s: f64,
    devices_found: usize,
    links_found: usize,
    requests: u64,
    responses: u64,
    timeouts: u64,
    retries: u64,
    abandoned: u64,
    bytes_sent: u64,
    bytes_received: u64,
    mean_fm_processing_us: f64,
    fm_utilization: f64,
}

impl RunReport {
    fn to_json(&self) -> Json {
        Json::object()
            .with("topology", self.topology.as_str())
            .with("devices", self.devices)
            .with("algorithm", self.algorithm.as_str())
            .with("scenario", self.scenario.as_str())
            .with("discovery_time_s", self.discovery_time_s)
            .with("devices_found", self.devices_found)
            .with("links_found", self.links_found)
            .with("requests", self.requests)
            .with("responses", self.responses)
            .with("timeouts", self.timeouts)
            .with("retries", self.retries)
            .with("abandoned", self.abandoned)
            .with("bytes_sent", self.bytes_sent)
            .with("bytes_received", self.bytes_received)
            .with("mean_fm_processing_us", self.mean_fm_processing_us)
            .with("fm_utilization", self.fm_utilization)
    }
}

const USAGE: &str = "usage: asi-fabric-sim --topology <spec> [options]
       asi-fabric-sim faults --topology <spec> [options]
       asi-fabric-sim sweep [sweep options]
       asi-fabric-sim stress --topology <spec> [options]
       asi-fabric-sim snapshot save --topology <spec> --out <path> [options]
       asi-fabric-sim snapshot load --in <path> [--resave <path>] [options]
       asi-fabric-sim snapshot diff --old <path> --new <path> [--json]
       asi-fabric-sim snapshot verify --topology <spec> --in <path> [options]

topology specs:
  mesh:<W>x<H>        2-D mesh of 16-port switches, one endpoint each (2..=64 per side)
  torus:<W>x<H>       2-D torus (2..=64 per side)
  fattree:<m>,<n>     m-port n-tree (m even, 2..=256; n 1..=8)
  irregular:<N>       random connected fabric with N switches (1..=4096)

options:
  --algorithm serial-packet|serial-device|parallel|all   (default: all)
  --change none|remove|add     measure initial discovery or a change (default: none)
  --fm-factor <f>              FM processing speed factor (default 1)
  --device-factor <f>          device processing speed factor (default 1)
  --seed <n>                   RNG seed (default 0xA51)
  --trace <path>               write a JSONL discovery trace (see docs/TRACE_FORMAT.md)
  --json                       emit JSON instead of a table

fault options (compose a deterministic fault plan; accepted by every mode,
and the `faults` mode reports the robustness metrics — see docs/FAULTS.md):
  --loss <p>                   mean per-hop packet loss probability in [0,1) (default 0)
  --loss-model uniform|bursty  loss process for --loss (default: uniform)
  --corrupt <p>                completion corruption (CRC drop) probability (default 0)
  --duplicate <p>              completion duplication probability (default 0)
  --flap <at_us>:<dev>:<port>:<down_us>   schedule a link flap (repeatable)
  --hang <at_us>:<dev>:<dur_us>           schedule a device hang (repeatable)
  --slow <at_us>:<dev>:<factor>:<dur_us>  schedule a device slowdown (repeatable)
  --retry-policy fixed|exponential|deadline   retry/backoff policy (default: fixed)
  --retries <n>                retry budget for fixed/exponential (default 0)
  --deadline-us <n>            per-request budget for --retry-policy deadline
  --timeout-us <n>             base request timeout under faults (default 800)

sweep options (deterministic multi-threaded grid; output is byte-identical
for any --jobs value):
  --grid fig5|fig6|faults|warmstart|smoke|scale   named grid (default: smoke)
  --quick                      smaller topology set / fewer repetitions
  --jobs <n>                   worker threads (default: all cores)
  --fms <n>                    override the grid's fabric-manager axis with a
                               single count (>1 = election-based sharded
                               discovery — see docs/DISTRIBUTED.md)
  --fm-factor <f>              FM processing speed factor (default 1)
  --device-factor <f>          device processing speed factor (default 1)
  plus any fault option above, applied to every cell
  --json | --csv               machine-readable output (default: text table)
  (the scale grid also prints wall-clock throughput on stderr, outside
  the byte-compared stdout)

stress options (one large-fabric discovery with wall-clock throughput;
wall_time_s and events_per_sec are execution-dependent by design — the
deterministic counterpart is `sweep --grid scale`; exits 1 when the
discovery misses devices):
  --topology <spec>            fabric under test (e.g. mesh:64x64)
  --algorithm serial-packet|serial-device|parallel   (default: parallel)
  --fms <n>                    fabric managers; >1 runs the election-based
                               sharded discovery with a certified merge
  --seed / --fm-factor / --device-factor / --json as above

snapshot options (cached-topology workflows — see docs/ARCHITECTURE.md):
  save    run a cold discovery and write the resulting snapshot to --out
  load    read a snapshot, print its summary; --resave <path> rewrites it
  diff    structural delta between --old and --new snapshots
  verify  warm-start discovery on --topology seeded from --in: one probe
          per cached device, escalating around mismatches
  --format binary|jsonl        output format for save/--resave (default: binary)
  --threshold <f>              mismatch fraction that triggers the full
                               cold fallback during verify (default 0.25)
  plus --algorithm/--seed/--fm-factor/--device-factor/--json where relevant";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2)
}

/// Friendly fatal error: one line on stderr, then the usage text, exit 2.
fn fail(msg: impl fmt::Display) -> ! {
    eprintln!("error: {msg}");
    eprintln!();
    eprintln!("{USAGE}");
    std::process::exit(2)
}

fn parse_topology(spec: &str, seed: u64) -> Result<Topology, String> {
    let Some((kind, rest)) = spec.split_once(':') else {
        return Err(format!(
            "topology {spec:?} is missing its parameters (e.g. mesh:3x3)"
        ));
    };
    match kind {
        "mesh" | "torus" => {
            let Some((w, h)) = rest.split_once('x') else {
                return Err(format!("{kind} wants WxH dimensions, got {rest:?}"));
            };
            let (w, h): (usize, usize) = match (w.parse(), h.parse()) {
                (Ok(w), Ok(h)) => (w, h),
                _ => return Err(format!("{kind} dimensions must be integers, got {rest:?}")),
            };
            if !(2..=64).contains(&w) || !(2..=64).contains(&h) {
                return Err(format!(
                    "{kind} sides must be between 2 and 64, got {w}x{h}"
                ));
            }
            Ok(if kind == "mesh" {
                mesh(w, h).topology
            } else {
                torus(w, h).topology
            })
        }
        "fattree" => {
            let Some((m, n)) = rest.split_once(',') else {
                return Err(format!("fattree wants m,n parameters, got {rest:?}"));
            };
            let (m, n): (u32, u32) = match (m.parse(), n.parse()) {
                (Ok(m), Ok(n)) => (m, n),
                _ => return Err(format!("fattree parameters must be integers, got {rest:?}")),
            };
            if !(2..=256).contains(&m) || !m.is_multiple_of(2) {
                return Err(format!(
                    "fattree port count must be even and in 2..=256, got {m}"
                ));
            }
            if !(1..=8).contains(&n) {
                return Err(format!("fattree levels must be in 1..=8, got {n}"));
            }
            Ok(fat_tree(m, n).topology)
        }
        "irregular" => {
            let switches: usize = rest
                .parse()
                .map_err(|_| format!("irregular wants a switch count, got {rest:?}"))?;
            if !(1..=4096).contains(&switches) {
                return Err(format!(
                    "irregular switch count must be in 1..=4096, got {switches}"
                ));
            }
            let mut rng = SimRng::new(seed);
            Ok(irregular(
                IrregularSpec {
                    switches,
                    extra_links: switches / 2,
                    endpoints_per_switch: 1,
                },
                &mut rng,
            ))
        }
        other => Err(format!(
            "unknown topology kind {other:?} (mesh, torus, fattree, irregular)"
        )),
    }
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Every value of a repeatable `--name <value>` flag, in order.
fn arg_values(args: &[String], name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            match args.get(i + 1) {
                Some(v) => out.push(v.clone()),
                None => fail(format!("{name} is missing its value")),
            }
        }
    }
    out
}

/// Parses `--name <value>` with a friendly error instead of a panic.
fn parse_arg<T: std::str::FromStr>(args: &[String], name: &str, default: T, what: &str) -> T {
    match arg_value(args, name) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| fail(format!("{name} must be {what}, got {v:?}"))),
    }
}

fn parse_loss(args: &[String]) -> f64 {
    let loss: f64 = parse_arg(args, "--loss", 0.0, "a probability");
    if !(0.0..1.0).contains(&loss) {
        fail(format!("--loss must be in [0, 1), got {loss}"));
    }
    loss
}

/// Parses `--name <p>` as a probability in [0, 1].
fn parse_prob(args: &[String], name: &str) -> f64 {
    let p: f64 = parse_arg(args, name, 0.0, "a probability");
    if !(0.0..=1.0).contains(&p) {
        fail(format!("{name} must be in [0, 1], got {p}"));
    }
    p
}

/// Splits a colon-separated fault-event spec into exactly `n` fields.
fn split_spec<'a>(flag: &str, spec: &'a str, shape: &str, n: usize) -> Vec<&'a str> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != n {
        fail(format!("{flag} wants {shape}, got {spec:?}"));
    }
    parts
}

/// Parses one colon-separated field with a friendly error.
fn spec_field<T: std::str::FromStr>(flag: &str, field: &str, what: &str) -> T {
    field
        .parse()
        .unwrap_or_else(|_| fail(format!("{flag}: {field:?} is not {what}")))
}

/// Composes the fault plan from `--loss`/`--loss-model`, the completion
/// corruption/duplication probabilities, and any scheduled
/// `--flap`/`--hang`/`--slow` events.
fn parse_fault_plan(args: &[String]) -> FaultPlan {
    let loss = parse_loss(args);
    let model = match arg_value(args, "--loss-model").as_deref() {
        Some("uniform") | None => LossModel::uniform(loss),
        Some("bursty") => LossModel::bursty(loss),
        Some(other) => fail(format!("unknown loss model {other:?} (uniform, bursty)")),
    };
    let mut plan = FaultPlan::none()
        .with_loss(model)
        .with_corruption(parse_prob(args, "--corrupt"))
        .with_duplication(parse_prob(args, "--duplicate"));
    for spec in arg_values(args, "--flap") {
        let shape = "<at_us>:<device>:<port>:<down_us>";
        let p = split_spec("--flap", &spec, shape, 4);
        plan = plan.with_link_flap(
            SimDuration::from_us(spec_field("--flap", p[0], "a time in µs")),
            spec_field("--flap", p[1], "a device id"),
            spec_field("--flap", p[2], "a port number"),
            SimDuration::from_us(spec_field("--flap", p[3], "a duration in µs")),
        );
    }
    for spec in arg_values(args, "--hang") {
        let shape = "<at_us>:<device>:<dur_us>";
        let p = split_spec("--hang", &spec, shape, 3);
        plan = plan.with_device_hang(
            SimDuration::from_us(spec_field("--hang", p[0], "a time in µs")),
            spec_field("--hang", p[1], "a device id"),
            SimDuration::from_us(spec_field("--hang", p[2], "a duration in µs")),
        );
    }
    for spec in arg_values(args, "--slow") {
        let shape = "<at_us>:<device>:<factor>:<dur_us>";
        let p = split_spec("--slow", &spec, shape, 4);
        let factor: f64 = spec_field("--slow", p[2], "a number");
        if factor <= 0.0 {
            fail(format!("--slow factor must be positive, got {factor}"));
        }
        plan = plan.with_device_slow(
            SimDuration::from_us(spec_field("--slow", p[0], "a time in µs")),
            spec_field("--slow", p[1], "a device id"),
            factor,
            SimDuration::from_us(spec_field("--slow", p[3], "a duration in µs")),
        );
    }
    plan
}

/// Parses the retry policy from `--retry-policy`, `--retries` and
/// `--deadline-us`.
fn parse_retry(args: &[String]) -> RetryPolicy {
    let retries: u32 = parse_arg(args, "--retries", 0, "an integer");
    let deadline_us = arg_value(args, "--deadline-us");
    let policy = arg_value(args, "--retry-policy");
    match policy.as_deref() {
        Some("deadline") => {
            let Some(us) = deadline_us else {
                fail("--retry-policy deadline needs --deadline-us <n>");
            };
            let us: u64 = us
                .parse()
                .unwrap_or_else(|_| fail(format!("--deadline-us must be an integer, got {us:?}")));
            RetryPolicy::deadline(SimDuration::from_us(us))
        }
        Some("fixed") | None => {
            if deadline_us.is_some() {
                fail("--deadline-us only applies with --retry-policy deadline");
            }
            RetryPolicy::fixed(retries)
        }
        Some("exponential") => {
            if deadline_us.is_some() {
                fail("--deadline-us only applies with --retry-policy deadline");
            }
            RetryPolicy::exponential(retries)
        }
        Some(other) => fail(format!(
            "unknown retry policy {other:?} (fixed, exponential, deadline)"
        )),
    }
}

fn parse_algorithms(args: &[String]) -> Vec<Algorithm> {
    match arg_value(args, "--algorithm").as_deref() {
        Some("serial-packet") => vec![Algorithm::SerialPacket],
        Some("serial-device") => vec![Algorithm::SerialDevice],
        Some("parallel") => vec![Algorithm::Parallel],
        Some("all") | None => Algorithm::all().to_vec(),
        Some(other) => fail(format!(
            "unknown algorithm {other:?} (serial-packet, serial-device, parallel, all)"
        )),
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `asi-fabric-sim sweep ...`: run a named deterministic grid.
fn sweep_main(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let fm_factor: f64 = parse_arg(args, "--fm-factor", 1.0, "a number");
    let device_factor: f64 = parse_arg(args, "--device-factor", 1.0, "a number");
    let mut spec = match arg_value(args, "--grid").as_deref() {
        Some("fig5") => SweepSpec::fig5(quick),
        Some("fig6") => SweepSpec::fig6(quick, fm_factor, device_factor),
        Some("faults") => SweepSpec::faults(quick),
        Some("warmstart") => SweepSpec::warmstart(quick),
        Some("scale") => SweepSpec::scale(quick),
        Some("smoke") | None => SweepSpec::smoke(),
        Some(other) => fail(format!(
            "unknown grid {other:?} (fig5, fig6, faults, warmstart, smoke, scale)"
        )),
    };
    spec.fm_factor = fm_factor;
    spec.device_factor = device_factor;
    // Fault flags override the grid's plan (the `faults` grid carries
    // its own defaults; any other grid stays loss-free unless asked).
    let plan = parse_fault_plan(args);
    let has_retry_flags = ["--retries", "--retry-policy", "--deadline-us"]
        .iter()
        .any(|f| args.iter().any(|a| a == *f));
    if !plan.is_inert() {
        spec.faults = plan;
        spec.request_timeout =
            SimDuration::from_us(parse_arg(args, "--timeout-us", 800, "an integer"));
    }
    if has_retry_flags {
        spec.retry = parse_retry(args);
    }
    let jobs: usize = parse_arg(args, "--jobs", default_jobs(), "an integer");
    if jobs == 0 {
        fail("--jobs must be at least 1");
    }
    if arg_value(args, "--fms").is_some() {
        let fms: usize = parse_arg(args, "--fms", 1, "an integer");
        if fms == 0 {
            fail("--fms must be at least 1");
        }
        spec.fm_counts = vec![fms];
    }
    let started = std::time::Instant::now();
    let result = sweep::run(&spec, jobs);
    if spec.name == "scale" {
        // Wall-clock throughput goes to stderr: stdout must stay
        // byte-identical across --jobs values.
        let wall = started.elapsed().as_secs_f64();
        let events: u64 = result.cells.iter().map(|c| c.sim_events).sum();
        let rate = if wall > 0.0 {
            (events as f64 / wall) as u64
        } else {
            0
        };
        eprintln!(
            "scale: {} cells, {events} sim events in {wall:.2}s wall ({rate} events/sec)",
            result.cells.len()
        );
    }
    if args.iter().any(|a| a == "--json") {
        println!("{}", result.to_json().to_string_pretty());
    } else if args.iter().any(|a| a == "--csv") {
        print!("{}", result.to_csv());
    } else {
        print!("{}", result.to_text());
    }
}

/// `asi-fabric-sim stress ...`: one large-fabric discovery with
/// wall-clock throughput metrics. `wall_time_s` and `events_per_sec`
/// depend on the machine and must never be byte-compared; the
/// deterministic counterpart is `sweep --grid scale`. Exits 1 when the
/// discovery misses devices, so CI can assert full coverage directly.
fn stress_main(args: &[String]) {
    let seed: u64 = parse_arg(args, "--seed", 0xA51, "an integer");
    let Some(topo_spec) = arg_value(args, "--topology") else {
        fail("--topology is required (e.g. stress --topology mesh:64x64)");
    };
    let topo = parse_topology(&topo_spec, seed).unwrap_or_else(|e| fail(e));
    let fm_factor: f64 = parse_arg(args, "--fm-factor", 1.0, "a number");
    let device_factor: f64 = parse_arg(args, "--device-factor", 1.0, "a number");
    let algorithm = parse_single_algorithm(args, "stress");
    let json = args.iter().any(|a| a == "--json");
    let trace = trace_out(args);
    let scenario = Scenario::new(algorithm)
        .with_factors(fm_factor, device_factor)
        .with_seed(seed)
        .with_trace(trace.handle.clone());
    let fms: usize = parse_arg(args, "--fms", 1, "an integer");
    if fms == 0 {
        fail("--fms must be at least 1");
    }
    if fms > 1 {
        return stress_sharded(&topo, fms, &scenario, algorithm, seed, json, &trace);
    }
    let started = std::time::Instant::now();
    let bench = Bench::start(&topo, &scenario, &[]);
    let wall_time_s = started.elapsed().as_secs_f64();
    let run = bench.last_run();
    let sim_events = bench.fabric.events_processed();
    let events_per_sec = if wall_time_s > 0.0 {
        (sim_events as f64 / wall_time_s) as u64
    } else {
        0
    };
    let full_topology = run.devices_found == topo.node_count();
    if json {
        let out = Json::object()
            .with("topology", topo.name.as_str())
            .with("devices", topo.node_count())
            .with("algorithm", algorithm.name())
            .with("seed", seed)
            .with("full_topology", full_topology)
            .with("devices_found", run.devices_found)
            .with("links_found", run.links_found)
            .with("requests", run.requests_sent)
            .with("timeouts", run.timeouts)
            .with("discovery_time_s", run.discovery_time().as_secs_f64())
            .with("peak_outstanding", run.peak_outstanding)
            .with("sim_events", sim_events)
            .with("wall_time_s", wall_time_s)
            .with("events_per_sec", events_per_sec);
        println!("{}", out.to_string_pretty());
    } else {
        println!(
            "stress {}: {} of {} devices ({} links) in {:.3}s simulated / {:.2}s wall",
            topo.name,
            run.devices_found,
            topo.node_count(),
            run.links_found,
            run.discovery_time().as_secs_f64(),
            wall_time_s,
        );
        println!(
            "  {sim_events} sim events, {events_per_sec} events/sec, \
             peak {} outstanding requests, {} timeouts",
            run.peak_outstanding, run.timeouts,
        );
    }
    trace.save();
    if !full_topology {
        eprintln!(
            "stress: discovery found {} of {} devices",
            run.devices_found,
            topo.node_count()
        );
        std::process::exit(1);
    }
}

/// `stress --fms N`: one election-based sharded discovery. The headline
/// time is election kick-off to the certified merged database; the
/// checksum is the merge certificate's canonical-snapshot checksum, so
/// two runs with the same seed can be compared byte-for-byte on it.
/// Exits 1 unless the merged database covers the whole fabric.
fn stress_sharded(
    topo: &Topology,
    fms: usize,
    scenario: &Scenario,
    algorithm: Algorithm,
    seed: u64,
    json: bool,
    trace: &TraceOut,
) {
    let started = std::time::Instant::now();
    let (fabric, _primary, out) = sharded_discovery(topo, fms, scenario);
    let wall_time_s = started.elapsed().as_secs_f64();
    let sim_events = fabric.events_processed();
    let events_per_sec = if wall_time_s > 0.0 {
        (sim_events as f64 / wall_time_s) as u64
    } else {
        0
    };
    let full_topology = out.devices == topo.node_count();
    if json {
        let output = Json::object()
            .with("topology", topo.name.as_str())
            .with("devices", topo.node_count())
            .with("algorithm", algorithm.name())
            .with("seed", seed)
            .with("fms", fms)
            .with("full_topology", full_topology)
            .with("devices_found", out.devices)
            .with("links_found", out.links)
            .with("boundary_conflicts", out.boundary_conflicts)
            .with("failovers", out.failovers)
            .with("discovery_time_s", out.merged_time.as_secs_f64())
            .with("merge_time_s", out.merge_time.as_secs_f64())
            .with("merge_checksum", out.checksum)
            .with("sim_events", sim_events)
            .with("wall_time_s", wall_time_s)
            .with("events_per_sec", events_per_sec);
        println!("{}", output.to_string_pretty());
    } else {
        println!(
            "stress {} ({} managers): {} of {} devices ({} links) in {:.3}s simulated / {:.2}s wall",
            topo.name,
            fms,
            out.devices,
            topo.node_count(),
            out.links,
            out.merged_time.as_secs_f64(),
            wall_time_s,
        );
        println!(
            "  {sim_events} sim events, {events_per_sec} events/sec, \
             {} boundary conflicts, {} failovers, merge tail {:.1}us, checksum {:#x}",
            out.boundary_conflicts,
            out.failovers,
            out.merge_time.as_secs_f64() * 1e6,
            out.checksum,
        );
    }
    trace.save();
    if !full_topology {
        eprintln!(
            "stress: sharded discovery merged {} of {} devices",
            out.devices,
            topo.node_count()
        );
        std::process::exit(1);
    }
}

fn parse_snapshot_format(args: &[String]) -> SnapshotFormat {
    match arg_value(args, "--format").as_deref() {
        Some("binary") | None => SnapshotFormat::Binary,
        Some("jsonl") => SnapshotFormat::Jsonl,
        Some(other) => fail(format!("unknown snapshot format {other:?} (binary, jsonl)")),
    }
}

/// Modes that run one concrete discovery (stress, snapshot) reject `all`.
fn parse_single_algorithm(args: &[String], mode: &str) -> Algorithm {
    match arg_value(args, "--algorithm").as_deref() {
        Some("serial-packet") => Algorithm::SerialPacket,
        Some("serial-device") => Algorithm::SerialDevice,
        Some("parallel") | None => Algorithm::Parallel,
        Some(other) => fail(format!(
            "{mode} mode wants one algorithm, got {other:?} \
             (serial-packet, serial-device, parallel)"
        )),
    }
}

fn require_arg(args: &[String], name: &str, hint: &str) -> String {
    arg_value(args, name).unwrap_or_else(|| fail(format!("{name} is required ({hint})")))
}

fn load_snapshot_or_fail(path: &str) -> Snapshot {
    load_snapshot(Path::new(path)).unwrap_or_else(|e| fail(format!("cannot load snapshot: {e}")))
}

fn snapshot_summary(path: &str, snap: &Snapshot) -> Json {
    Json::object()
        .with("path", path)
        .with("devices", snap.device_count())
        .with("links", snap.link_count())
        .with("host_dsn", format!("{:#x}", snap.host_dsn).as_str())
        .with("checksum", format!("{:#x}", checksum_of(snap)).as_str())
}

fn print_snapshot_summary(path: &str, snap: &Snapshot, json: bool) {
    if json {
        println!("{}", snapshot_summary(path, snap).to_string_pretty());
    } else {
        println!(
            "snapshot {path}: {} devices, {} links, host {:#x}, checksum {:#x}",
            snap.device_count(),
            snap.link_count(),
            snap.host_dsn,
            checksum_of(snap)
        );
    }
}

fn hex_arr(dsns: &[u64]) -> Json {
    Json::Arr(dsns.iter().map(|d| Json::Str(format!("{d:#x}"))).collect())
}

fn link_arr(links: &[(u64, u8, u64, u8)]) -> Json {
    Json::Arr(
        links
            .iter()
            .map(|&(a, ap, b, bp)| {
                Json::object()
                    .with("a", format!("{a:#x}").as_str())
                    .with("a_port", ap)
                    .with("b", format!("{b:#x}").as_str())
                    .with("b_port", bp)
            })
            .collect(),
    )
}

/// `asi-fabric-sim snapshot <save|load|diff|verify> ...`: cached-topology
/// workflows on the asi-state snapshot format.
fn snapshot_main(args: &[String]) {
    let Some(subcommand) = args.first() else {
        fail("snapshot wants a subcommand (save, load, diff, verify)");
    };
    let json = args.iter().any(|a| a == "--json");
    match subcommand.as_str() {
        "save" => {
            let seed: u64 = parse_arg(args, "--seed", 0xA51, "an integer");
            let spec = require_arg(args, "--topology", "e.g. snapshot save --topology mesh:3x3");
            let out = require_arg(args, "--out", "where to write the snapshot");
            let topo = parse_topology(&spec, seed).unwrap_or_else(|e| fail(e));
            let fm_factor: f64 = parse_arg(args, "--fm-factor", 1.0, "a number");
            let device_factor: f64 = parse_arg(args, "--device-factor", 1.0, "a number");
            let trace = trace_out(args);
            let scenario = Scenario::new(parse_single_algorithm(args, "snapshot"))
                .with_factors(fm_factor, device_factor)
                .with_seed(seed)
                .with_trace(trace.handle.clone());
            let bench = Bench::start(&topo, &scenario, &[]);
            let snap = snapshot_db(bench.db());
            trace.handle.emit(bench.fabric.now(), || {
                advanced_switching::sim::trace::TraceEvent::SnapshotSaved {
                    devices: snap.device_count() as u64,
                    links: snap.link_count() as u64,
                }
            });
            trace.save();
            save_snapshot(Path::new(&out), &snap, parse_snapshot_format(args))
                .unwrap_or_else(|e| fail(format!("cannot write {out}: {e}")));
            print_snapshot_summary(&out, &snap, json);
        }
        "load" => {
            let input = require_arg(args, "--in", "the snapshot to read");
            let snap = load_snapshot_or_fail(&input);
            if let Some(resave) = arg_value(args, "--resave") {
                save_snapshot(Path::new(&resave), &snap, parse_snapshot_format(args))
                    .unwrap_or_else(|e| fail(format!("cannot write {resave}: {e}")));
            }
            print_snapshot_summary(&input, &snap, json);
        }
        "diff" => {
            let old = require_arg(args, "--old", "the baseline snapshot");
            let new = require_arg(args, "--new", "the newer snapshot");
            let delta =
                TopologyDelta::between(&load_snapshot_or_fail(&old), &load_snapshot_or_fail(&new));
            if json {
                let out = Json::object()
                    .with("identical", delta.is_empty())
                    .with("change_count", delta.change_count())
                    .with("added_devices", hex_arr(&delta.added_devices))
                    .with("removed_devices", hex_arr(&delta.removed_devices))
                    .with("recabled_devices", hex_arr(&delta.recabled_devices))
                    .with("added_links", link_arr(&delta.added_links))
                    .with("removed_links", link_arr(&delta.removed_links));
                println!("{}", out.to_string_pretty());
            } else if delta.is_empty() {
                println!("identical");
            } else {
                println!("{delta}");
            }
        }
        "verify" => {
            let seed: u64 = parse_arg(args, "--seed", 0xA51, "an integer");
            let spec = require_arg(args, "--topology", "the live fabric to verify against");
            let input = require_arg(args, "--in", "the cached snapshot");
            let topo = parse_topology(&spec, seed).unwrap_or_else(|e| fail(e));
            let threshold: f64 = parse_arg(args, "--threshold", 0.25, "a number");
            if !(0.0..=1.0).contains(&threshold) {
                fail(format!("--threshold must be in [0, 1], got {threshold}"));
            }
            let fm_factor: f64 = parse_arg(args, "--fm-factor", 1.0, "a number");
            let device_factor: f64 = parse_arg(args, "--device-factor", 1.0, "a number");
            let snap = load_snapshot_or_fail(&input);
            let trace = trace_out(args);
            let scenario = Scenario::new(parse_single_algorithm(args, "snapshot"))
                .with_factors(fm_factor, device_factor)
                .with_seed(seed)
                .with_snapshot(snap)
                .with_warm_fallback_threshold(threshold)
                .with_trace(trace.handle.clone());
            let bench = Bench::start(&topo, &scenario, &[]);
            trace.save();
            let run = bench.last_run();
            let trigger = match run.trigger {
                advanced_switching::core::DiscoveryTrigger::WarmStart => "warm-start",
                _ => "cold",
            };
            if json {
                let out = Json::object()
                    .with("topology", topo.name.as_str())
                    .with("snapshot", input.as_str())
                    .with("trigger", trigger)
                    .with("probes_verified", run.probes_verified)
                    .with("verify_mismatches", run.verify_mismatches)
                    .with("warm_fallback", run.warm_fallback)
                    .with("devices_found", run.devices_found)
                    .with("links_found", run.links_found)
                    .with("requests", run.requests_sent)
                    .with("discovery_time_s", run.discovery_time().as_secs_f64());
                println!("{}", out.to_string_pretty());
            } else {
                println!(
                    "{trigger}: {} verified, {} mismatched{}; {} devices, {} links in {:.3}ms",
                    run.probes_verified,
                    run.verify_mismatches,
                    if run.warm_fallback {
                        " (fell back to cold discovery)"
                    } else {
                        ""
                    },
                    run.devices_found,
                    run.links_found,
                    run.discovery_time().as_secs_f64() * 1e3
                );
            }
        }
        other => fail(format!(
            "unknown snapshot subcommand {other:?} (save, load, diff, verify)"
        )),
    }
}

/// Shared `--trace <path>` wiring: one collector for the whole
/// invocation; per-algorithm runs are delimited by their
/// run-started/run-finished records.
struct TraceOut {
    path: Option<String>,
    collector: Option<std::rc::Rc<std::cell::RefCell<RingCollector>>>,
    handle: TraceHandle,
}

fn trace_out(args: &[String]) -> TraceOut {
    let path = arg_value(args, "--trace");
    let collector = path.as_ref().map(|_| RingCollector::shared(1 << 20));
    let handle = collector
        .as_ref()
        .map(|c| TraceHandle::to(c.clone()))
        .unwrap_or_default();
    TraceOut {
        path,
        collector,
        handle,
    }
}

impl TraceOut {
    fn save(&self) {
        let (Some(path), Some(collector)) = (&self.path, &self.collector) else {
            return;
        };
        let collector = collector.borrow();
        let path = std::path::Path::new(path);
        save_trace_jsonl(path, collector.records()).unwrap_or_else(|e| {
            eprintln!("cannot write trace to {}: {e}", path.display());
            std::process::exit(1);
        });
        eprintln!(
            "trace: {} records written to {}{}",
            collector.len(),
            path.display(),
            if collector.dropped() > 0 {
                format!(
                    " ({} oldest dropped by the ring buffer)",
                    collector.dropped()
                )
            } else {
                String::new()
            }
        );
    }
}

fn report_run(
    topo: &Topology,
    algorithm: Algorithm,
    scenario_name: &str,
    run: &advanced_switching::core::DiscoveryRun,
) -> RunReport {
    RunReport {
        topology: topo.name.clone(),
        devices: topo.node_count(),
        algorithm: algorithm.name().to_string(),
        scenario: scenario_name.to_string(),
        discovery_time_s: run.discovery_time().as_secs_f64(),
        devices_found: run.devices_found,
        links_found: run.links_found,
        requests: run.requests_sent,
        responses: run.responses_received,
        timeouts: run.timeouts,
        retries: run.retries,
        abandoned: run.abandoned,
        bytes_sent: run.bytes_sent,
        bytes_received: run.bytes_received,
        mean_fm_processing_us: run.mean_fm_processing().as_micros_f64(),
        fm_utilization: run.fm_utilization(),
    }
}

fn print_reports(reports: &[RunReport], json: bool) {
    if json {
        let arr = Json::Arr(reports.iter().map(RunReport::to_json).collect());
        println!("{}", arr.to_string_pretty());
    } else {
        println!(
            "{:<16} {:>14} {:>9} {:>9} {:>9} {:>8} {:>9} {:>12} {:>8}",
            "algorithm",
            "discovery",
            "devices",
            "links",
            "requests",
            "retries",
            "abandoned",
            "FM us/pkt",
            "FM util"
        );
        for r in reports {
            println!(
                "{:<16} {:>12.3}ms {:>9} {:>9} {:>9} {:>8} {:>9} {:>12.2} {:>7.0}%",
                r.algorithm,
                r.discovery_time_s * 1e3,
                r.devices_found,
                r.links_found,
                r.requests,
                r.retries,
                r.abandoned,
                r.mean_fm_processing_us,
                r.fm_utilization * 100.0
            );
        }
    }
}

/// `asi-fabric-sim faults ...`: initial discovery under a composed
/// fault plan, reporting the robustness/degradation metrics.
fn faults_main(args: &[String]) {
    let seed: u64 = parse_arg(args, "--seed", 0xA51, "an integer");
    let Some(topo_spec) = arg_value(args, "--topology") else {
        fail("--topology is required (e.g. faults --topology mesh:3x3)");
    };
    let topo = parse_topology(&topo_spec, seed).unwrap_or_else(|e| fail(e));
    let fm_factor: f64 = parse_arg(args, "--fm-factor", 1.0, "a number");
    let device_factor: f64 = parse_arg(args, "--device-factor", 1.0, "a number");
    let faults = parse_fault_plan(args);
    let retry = parse_retry(args);
    let timeout_us: u64 = parse_arg(args, "--timeout-us", 800, "an integer");
    let json = args.iter().any(|a| a == "--json");
    let algorithms = parse_algorithms(args);
    let trace = trace_out(args);

    let mut reports = Vec::new();
    for algorithm in algorithms {
        let scenario = Scenario::new(algorithm)
            .with_factors(fm_factor, device_factor)
            .with_seed(seed)
            .with_faults(faults.clone())
            .with_retry(retry)
            .with_request_timeout(SimDuration::from_us(timeout_us))
            .with_trace(trace.handle.clone());
        let Some((run, _active)) = scenario.initial_discovery(&topo) else {
            fail("discovery never completed a run under the fault plan");
        };
        reports.push(report_run(&topo, algorithm, "faults", &run));
    }
    trace.save();
    print_reports(&reports, json);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    if args[0] == "sweep" {
        sweep_main(&args[1..]);
        return;
    }
    if args[0] == "stress" {
        stress_main(&args[1..]);
        return;
    }
    if args[0] == "faults" {
        faults_main(&args[1..]);
        return;
    }
    if args[0] == "snapshot" {
        snapshot_main(&args[1..]);
        return;
    }
    let seed: u64 = parse_arg(&args, "--seed", 0xA51, "an integer");
    let Some(topo_spec) = arg_value(&args, "--topology") else {
        fail("--topology is required (e.g. --topology mesh:3x3)");
    };
    let topo = parse_topology(&topo_spec, seed).unwrap_or_else(|e| fail(e));
    let fm_factor: f64 = parse_arg(&args, "--fm-factor", 1.0, "a number");
    let device_factor: f64 = parse_arg(&args, "--device-factor", 1.0, "a number");
    let faults = parse_fault_plan(&args);
    let retry = parse_retry(&args);
    let timeout_us: u64 = parse_arg(&args, "--timeout-us", 800, "an integer");
    let change = arg_value(&args, "--change").unwrap_or_else(|| "none".into());
    let json = args.iter().any(|a| a == "--json");
    let algorithms = parse_algorithms(&args);
    let trace = trace_out(&args);

    let mut reports = Vec::new();
    for algorithm in algorithms {
        let mut scenario = Scenario::new(algorithm)
            .with_factors(fm_factor, device_factor)
            .with_seed(seed)
            .with_faults(faults.clone())
            .with_retry(retry)
            .with_trace(trace.handle.clone());
        let run = match change.as_str() {
            "none" if faults.is_inert() => Bench::start(&topo, &scenario, &[]).last_run(),
            "none" => {
                // Faulty initial discovery: the unified robustness path
                // shared with the `faults` mode and the sweep runner.
                scenario = scenario.with_request_timeout(SimDuration::from_us(timeout_us));
                match scenario.initial_discovery(&topo) {
                    Some((run, _active)) => run,
                    None => fail(
                        "discovery did not complete under the fault plan (give the FM \
                         a larger --retries budget)",
                    ),
                }
            }
            "remove" | "add" => change_experiment(&topo, &scenario, change == "remove").0,
            other => fail(format!("unknown change {other:?} (none, remove, add)")),
        };
        reports.push(report_run(&topo, algorithm, &change, &run));
    }

    trace.save();
    print_reports(&reports, json);
}
